"""Unit tests for the lock-discipline rule family (RP101-RP104)."""

from __future__ import annotations

import textwrap

from repro.analysis.framework import SourceFile, lint_file
from repro.analysis.locks import (GuardedAttributeRule, LockOrderCycleRule,
                                  NestedAcquisitionRule, UnknownLockRule,
                                  collect_class_info)


def lint_snippet(tmp_path, code, rules):
    path = tmp_path / "repro" / "serve" / "fixture.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_file(SourceFile(path), rules=rules)


def rule_ids(violations):
    return [violation.rule_id for violation in violations]


# --------------------------------------------------------------------------- #
# RP101 — guarded attribute outside its lock
# --------------------------------------------------------------------------- #
class TestGuardedAttribute:
    RULES = [GuardedAttributeRule()]

    def test_unlocked_write_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    self.count += 1
        """, self.RULES)
        assert rule_ids(violations) == ["RP101"]
        assert "Counter.bump" in violations[0].message

    def test_unlocked_read_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def peek(self):
                    return self.count
        """, self.RULES)
        assert rule_ids(violations) == ["RP101"]

    def test_with_lock_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self.count += 1
                        return self.count
        """, self.RULES)
        assert violations == []

    def test_condition_alias_counts_as_lock(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
                    self._items = []  # guarded-by: _lock

                def pop(self):
                    with self._not_empty:
                        return self._items.pop()
        """, self.RULES)
        assert violations == []

    def test_locked_suffix_method_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def _bump_locked(self):
                    self.count += 1
        """, self.RULES)
        assert violations == []

    def test_locked_comment_method_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):  # locked
                    self.count += 1
        """, self.RULES)
        assert violations == []

    def test_wrong_lock_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def bump(self):
                    with self._other:
                        self.count += 1
        """, self.RULES)
        assert rule_ids(violations) == ["RP101"]

    def test_allow_comment_suppresses(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Ring:
                def __init__(self):
                    self._claim_lock = threading.Lock()
                    self._owner = []  # guarded-by: _claim_lock

                def descriptor(self):
                    return self._owner  # lint: allow RP101 - handed to the child whole
        """, self.RULES)
        assert violations == []

    def test_unannotated_class_ignored(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """, self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP102 — nested re-acquisition
# --------------------------------------------------------------------------- #
class TestNestedAcquisition:
    RULES = [NestedAcquisitionRule()]

    def test_direct_reacquisition_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Deadlock:
                def __init__(self):
                    self._lock = threading.Lock()

                def oops(self):
                    with self._lock:
                        with self._lock:
                            pass
        """, self.RULES)
        assert rule_ids(violations) == ["RP102"]

    def test_reacquisition_via_condition_alias_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Deadlock:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def oops(self):
                    with self._lock:
                        with self._cond:
                            pass
        """, self.RULES)
        assert rule_ids(violations) == ["RP102"]

    def test_distinct_locks_pass(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def nest(self):
                    with self._a:
                        with self._b:
                            pass
        """, self.RULES)
        assert violations == []

    def test_sequential_acquisition_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.Lock()

                def twice(self):
                    with self._lock:
                        pass
                    with self._lock:
                        pass
        """, self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP103 — lexical lock-order cycles
# --------------------------------------------------------------------------- #
class TestLockOrderCycle:
    RULES = [LockOrderCycleRule()]

    def test_conflicting_orders_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Tangle:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
        """, self.RULES)
        assert rule_ids(violations) == ["RP103"]
        assert "_a" in violations[0].message and "_b" in violations[0].message

    def test_consistent_order_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
        """, self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP104 — guarded-by must name a real lock
# --------------------------------------------------------------------------- #
class TestUnknownLock:
    RULES = [UnknownLockRule()]

    def test_unknown_lock_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Typo:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lokc
        """, self.RULES)
        assert rule_ids(violations) == ["RP104"]
        assert "_lokc" in violations[0].message

    def test_known_lock_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock
        """, self.RULES)
        assert violations == []

    def test_condition_attribute_is_a_known_lock(self, tmp_path):
        violations = lint_snippet(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
                    self._items = []  # guarded-by: _not_empty
        """, self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# class-info collection
# --------------------------------------------------------------------------- #
def test_collect_class_info_maps_guards_and_aliases(tmp_path):
    path = tmp_path / "repro" / "serve" / "info.py"
    path.parent.mkdir(parents=True)
    path.write_text(textwrap.dedent("""
        import threading

        class Annotated:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self.items = []  # guarded-by: _lock
    """))
    infos = collect_class_info(SourceFile(path))
    assert len(infos) == 1
    info = infos[0]
    assert info.guarded == {"items": "_lock"}
    assert info.aliases == {"_cond": "_lock"}
    assert info.resolve("_cond") == "_lock"
    assert {"_lock", "_cond"} <= info.locks


def test_shipped_tree_is_clean():
    """The acceptance gate: ``python -m repro.analysis src`` exits 0.

    Run against the checked-out ``src/`` tree (located relative to this test
    file so the installed-package CI leg finds it too).
    """
    from pathlib import Path

    from repro.analysis.framework import lint_paths

    src = Path(__file__).resolve().parent.parent / "src"
    assert src.is_dir()
    violations = lint_paths([src])
    assert violations == [], "\n".join(v.render() for v in violations)
