"""Unit tests for the invariant rule family (RP000-RP005).

Each rule is exercised against synthetic fixture modules written to paths
whose suffixes put them in (or out of) the rule's scope — the same suffix
matching the linter applies to the real tree.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.framework import SourceFile, lint_file, lint_paths
from repro.analysis.invariants import (BareExceptRule, EntropyFormatTagRule,
                                       HotPathPixelLoopRule, HotPathSlowIdiomRule,
                                       MaskRederivationRule)


def lint_snippet(tmp_path, relpath, code, rules=None):
    """Write ``code`` at ``tmp_path/relpath`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_file(SourceFile(path), rules=rules)


def rule_ids(violations):
    return [violation.rule_id for violation in violations]


# --------------------------------------------------------------------------- #
# RP000 — suppression hygiene
# --------------------------------------------------------------------------- #
class TestAllowHygiene:
    def test_reasonless_allow_is_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/x.py", """
            value = compute()  # lint: allow RP001
        """, rules=[])
        assert rule_ids(violations) == ["RP000"]
        assert "reason" in violations[0].message

    def test_malformed_allow_is_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/x.py", """
            value = compute()  # lint: allow all the things
        """, rules=[])
        assert rule_ids(violations) == ["RP000"]
        assert "malformed" in violations[0].message

    def test_wellformed_allow_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/x.py", """
            value = compute()  # lint: allow RP001 - documented exception
        """, rules=[])
        assert violations == []

    def test_reasonless_allow_does_not_suppress(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/x.py", """
            import numpy as np
            idx = np.flatnonzero(mask)  # lint: allow RP001
        """, rules=[MaskRederivationRule()])
        assert sorted(rule_ids(violations)) == ["RP000", "RP001"]

    def test_unparsable_file_reports_rp000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        violations = lint_paths([path])
        assert rule_ids(violations) == ["RP000"]
        assert "does not parse" in violations[0].message


# --------------------------------------------------------------------------- #
# RP001 — mask-index re-derivation
# --------------------------------------------------------------------------- #
class TestMaskRederivation:
    RULES = [MaskRederivationRule()]

    def test_flatnonzero_on_mask_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/bad.py", """
            import numpy as np
            def gather(mask):
                return np.flatnonzero(mask)
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP001"]

    def test_boolean_fancy_indexing_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/bad.py", """
            def pick(pixels, erase_mask):
                return pixels[erase_mask]
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP001"]

    def test_tuple_index_with_mask_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/bad.py", """
            def overwrite(tokens, flat_mask, new):
                tokens[:, flat_mask] = new
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP001"]

    def test_erase_squeeze_is_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/erase_squeeze.py", """
            import numpy as np
            def plan(mask):
                return np.flatnonzero(mask)
        """, rules=self.RULES)
        assert violations == []

    def test_out_of_scope_directories_pass(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/datasets/maskgen.py", """
            import numpy as np
            def sample(mask):
                return np.flatnonzero(mask)
        """, rules=self.RULES)
        assert violations == []

    def test_mask_bytes_dict_key_not_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/pipeline_like.py", """
            def group(groups, package):
                groups[package.mask_bytes] = 1
                return groups
        """, rules=self.RULES)
        assert violations == []

    def test_allow_comment_suppresses(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/plans.py", """
            import numpy as np
            def build(mask):
                return np.flatnonzero(mask)  # lint: allow RP001 - plan builder
        """, rules=self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP002 — entropy format tag + legacy hatch
# --------------------------------------------------------------------------- #
class TestEntropyFormatTag:
    RULES = [EntropyFormatTagRule()]

    BAD = """
        from repro.entropy import RangeEncoder
        def encode(data):
            encoder = RangeEncoder()
            return encoder.encode(data)
    """

    GOOD = """
        from repro.entropy import RangeEncoder
        FORMAT_RANGE = 1
        FORMAT_LEGACY = 0
        def encode(data, legacy_entropy=False):
            if legacy_entropy:
                return bytes([FORMAT_LEGACY]) + data
            encoder = RangeEncoder()
            return bytes([FORMAT_RANGE]) + encoder.encode(data)
    """

    def test_untagged_coder_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/codecs/bad.py", self.BAD,
                                  rules=self.RULES)
        assert rule_ids(violations) == ["RP002"]
        assert "FORMAT_RANGE" in violations[0].message
        assert "legacy_entropy" in violations[0].message

    def test_tagged_coder_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/codecs/good.py", self.GOOD,
                                  rules=self.RULES)
        assert violations == []

    def test_entropy_package_is_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/entropy/inner.py", self.BAD,
                                  rules=self.RULES)
        assert violations == []

    def test_tag_without_hatch_still_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/codecs/half.py", """
            from repro.entropy import ArithmeticDecoder
            FORMAT_RANGE = 1
            def decode(blob):
                return ArithmeticDecoder(blob)
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP002"]
        assert "legacy_entropy" in violations[0].message


# --------------------------------------------------------------------------- #
# RP003 — per-pixel loops in hot-path modules
# --------------------------------------------------------------------------- #
class TestHotPathPixelLoop:
    RULES = [HotPathPixelLoopRule()]

    NESTED = """
        def idct(block):
            total = 0
            for row in range(8):
                for col in range(8):
                    total += block[row][col]
            return total
    """

    def test_nested_range_loop_in_hot_module_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/codecs/jpeg.py", self.NESTED,
                                  rules=self.RULES)
        assert rule_ids(violations) == ["RP003"]

    def test_single_loop_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/patchify.py", """
            def scan(n):
                return [i * i for i in range(n)] + [j for j in range(n)]
        """, rules=self.RULES)
        assert violations == []

    def test_cold_module_is_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/experiments/tables.py",
                                  self.NESTED, rules=self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP004 — slow idioms in hot-path modules
# --------------------------------------------------------------------------- #
class TestHotPathSlowIdiom:
    RULES = [HotPathSlowIdiomRule()]

    def test_tolist_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/entropy/rle.py", """
            def encode(values):
                return list(values.tolist())
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP004"]

    def test_integer_cube_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/batch_engine.py", """
            def gelu_inner(x):
                return x + 0.044715 * x ** 3
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP004"]
        assert "pow fallback" in violations[0].message

    def test_square_and_constant_base_pass(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/batch_engine.py", """
            SCALE = 2 ** 16
            def square(x):
                return x ** 2
        """, rules=self.RULES)
        assert violations == []

    def test_cold_module_is_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/metrics/quality.py", """
            def cube(x):
                return x ** 3 + x.tolist()
        """, rules=self.RULES)
        assert violations == []

    def test_allow_comment_suppresses(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/entropy/rle.py", """
            def encode(values):
                return list(values.tolist())  # lint: allow RP004 - consumer wants python ints
        """, rules=self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# RP005 — bare-except justification
# --------------------------------------------------------------------------- #
class TestBareExcept:
    RULES = [BareExceptRule()]

    def test_unjustified_broad_except_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except Exception:
                    pass
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP005"]

    def test_bare_except_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except:
                    pass
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP005"]

    def test_justified_except_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except Exception:  # noqa: BLE001 - marshalled to the future
                    pass
        """, rules=self.RULES)
        assert violations == []

    def test_reasonless_noqa_still_flagged(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except Exception:  # noqa: BLE001
                    pass
        """, rules=self.RULES)
        assert rule_ids(violations) == ["RP005"]

    def test_reraising_handler_is_exempt(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except Exception:
                    cleanup()
                    raise
        """, rules=self.RULES)
        assert violations == []

    def test_narrow_except_passes(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/serve/handler.py", """
            def run(task):
                try:
                    task()
                except ValueError:
                    pass
        """, rules=self.RULES)
        assert violations == []


# --------------------------------------------------------------------------- #
# framework-level behaviour
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_violation_render_format(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/bad.py", """
            import numpy as np
            def gather(mask):
                return np.flatnonzero(mask)
        """, rules=[MaskRederivationRule()])
        rendered = violations[0].render()
        assert "RP001" in rendered
        prefix = rendered.split(" ", 1)[0]
        path, line, col = prefix.rsplit(":", 2)
        assert path.endswith("repro/core/bad.py")
        assert int(line) == 4 and int(col) >= 0

    def test_multi_id_allow_comment(self, tmp_path):
        violations = lint_snippet(tmp_path, "repro/core/patchify.py", """
            import numpy as np
            def plan(mask):
                return np.flatnonzero(mask).tolist()  # lint: allow RP001,RP004 - builder returns python ints
        """, rules=[MaskRederivationRule(), HotPathSlowIdiomRule()])
        assert violations == []

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "import numpy as np\n\n"
            "def gather(mask):\n    return np.flatnonzero(mask)\n")
        (package / "good.py").write_text("VALUE = 1\n")
        violations = lint_paths([tmp_path], rules=[MaskRederivationRule()])
        assert rule_ids(violations) == ["RP001"]


def test_cli_list_rules_covers_catalogue(capsys):
    from repro.analysis.cli import main
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005",
                    "RP101", "RP102", "RP103", "RP104"):
        assert rule_id in out


def test_cli_exit_codes(tmp_path, capsys):
    from repro.analysis.cli import main
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert main([str(clean)]) == 0
    dirty = tmp_path / "repro" / "serve" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import numpy as np\n\n"
                     "def gather(mask):\n    return np.flatnonzero(mask)\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "RP001" in out
    with pytest.raises(SystemExit) as excinfo:
        main(["--no-such-flag"])
    assert excinfo.value.code == 2
