"""Tests for the frame-sequence (streaming) support."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import PngCodec
from repro.core import (
    EaszStreamDecoder,
    EaszStreamEncoder,
    encode_decode_stream,
    flicker_index,
)
from repro.datasets import SyntheticImageGenerator


@pytest.fixture(scope="module")
def frames():
    """A short sequence of slowly varying grayscale frames."""
    generator = SyntheticImageGenerator(32, 48, color=False)
    base = generator.generate(42)
    sequence = []
    for step in range(4):
        drifted = np.roll(base, shift=step, axis=1)
        sequence.append(np.clip(drifted + 0.01 * step, 0.0, 1.0))
    return sequence


class TestFlickerIndex:
    def test_identical_sequences_have_zero_flicker(self, frames):
        assert flicker_index(frames, frames) == pytest.approx(0.0)

    def test_noisy_reconstruction_flickers_more(self, frames, rng):
        noisy = [np.clip(f + 0.1 * rng.standard_normal(f.shape), 0, 1) for f in frames]
        assert flicker_index(frames, noisy) > 0.0

    def test_single_frame_sequence_has_no_flicker(self, frames):
        assert flicker_index(frames[:1], frames[:1]) == 0.0

    def test_length_mismatch_is_rejected(self, frames):
        with pytest.raises(ValueError):
            flicker_index(frames, frames[:-1])

    def test_smoother_reconstruction_never_scores_negative(self, frames):
        frozen = [frames[0]] * len(frames)
        assert flicker_index(frames, frozen) == 0.0


class TestStreamEncoder:
    def test_refresh_every_frame(self, tiny_config, frames):
        encoder = EaszStreamEncoder(config=tiny_config, base_codec=PngCodec(),
                                    mask_refresh_interval=1, seed=0)
        encoder.encode_sequence(frames)
        assert encoder.mask_refreshes == len(frames)

    def test_single_mask_for_whole_stream(self, tiny_config, frames):
        encoder = EaszStreamEncoder(config=tiny_config, base_codec=PngCodec(),
                                    mask_refresh_interval=0, seed=0)
        packages = encoder.encode_sequence(frames)
        assert encoder.mask_refreshes == 1
        masks = {package.mask_bytes for package in packages}
        assert len(masks) == 1

    def test_periodic_refresh(self, tiny_config, frames):
        encoder = EaszStreamEncoder(config=tiny_config, base_codec=PngCodec(),
                                    mask_refresh_interval=2, seed=0)
        encoder.encode_sequence(frames)
        assert encoder.mask_refreshes == 2

    def test_packages_are_decodable(self, tiny_config, frames, untrained_tiny_model):
        encoder = EaszStreamEncoder(config=tiny_config, base_codec=PngCodec(), seed=0)
        decoder = EaszStreamDecoder(model=untrained_tiny_model, config=tiny_config,
                                    base_codec=PngCodec())
        packages = encoder.encode_sequence(frames)
        decoded = decoder.decode_sequence(packages, reconstruct=False)
        assert len(decoded) == len(frames)
        assert all(frame.shape == frames[0].shape for frame in decoded)


class TestEncodeDecodeStream:
    def test_report_statistics_are_consistent(self, tiny_config, frames, trained_tiny_model):
        reconstructed, report = encode_decode_stream(
            frames, config=tiny_config, base_codec=PngCodec(), model=trained_tiny_model,
            mask_refresh_interval=1, seed=0)
        assert report.num_frames == len(frames) == len(reconstructed)
        assert report.mean_bpp > 0
        assert np.isfinite(report.mean_psnr_db)
        assert report.mask_refreshes == len(frames)
        assert report.mask_bytes_total == sum(e["mask_bytes"] for e in report.per_frame)
        assert set(report.as_dict()) == {
            "num_frames", "mean_bpp", "mean_psnr_db", "flicker",
            "mask_refreshes", "mask_bytes_total",
        }

    def test_static_mask_amortises_side_channel(self, tiny_config, frames, trained_tiny_model):
        _, refreshed = encode_decode_stream(frames, config=tiny_config, base_codec=PngCodec(),
                                            model=trained_tiny_model, mask_refresh_interval=1,
                                            seed=0)
        _, held = encode_decode_stream(frames, config=tiny_config, base_codec=PngCodec(),
                                       model=trained_tiny_model, mask_refresh_interval=0,
                                       seed=0)
        assert held.mask_refreshes < refreshed.mask_refreshes
        assert held.mask_refreshes == 1

    def test_reconstruction_reduces_flicker_vs_holes(self, tiny_config, frames,
                                                     trained_tiny_model):
        """Filling erased regions with predictions flickers less than leaving holes."""
        encoder = EaszStreamEncoder(config=tiny_config, base_codec=PngCodec(),
                                    mask_refresh_interval=1, seed=0)
        decoder = EaszStreamDecoder(model=trained_tiny_model, config=tiny_config,
                                    base_codec=PngCodec())
        packages = encoder.encode_sequence(frames)
        holes = decoder.decode_sequence(packages, reconstruct=False)
        reconstructed = decoder.decode_sequence(packages, reconstruct=True)
        assert flicker_index(frames, reconstructed) <= flicker_index(frames, holes)

    def test_empty_sequence_is_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            encode_decode_stream([], config=tiny_config)
