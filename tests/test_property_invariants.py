"""Property-based tests on the core Easz invariants (hypothesis).

These complement the per-module unit tests with randomly generated
geometries: whatever the patch/sub-patch/erase configuration and whatever the
image content, (a) erase-and-squeeze followed by unsqueeze restores every
kept pixel exactly, (b) the squeezed size matches the analytic formula,
(c) the sampler's masks always satisfy their declared constraints, and
(d) the mask transport formats agree with each other.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EaszConfig,
    MaskSpec,
    RowConditionalSampler,
    decode_mask,
    encode_mask,
    erase_and_squeeze_image,
    proposed_mask,
    squeezed_shape,
    unsqueeze_image,
)
from repro.core.patchify import image_to_patches, patches_to_image


# geometry strategy: (grid_size, erase_per_row, subpatch_size) with feasible spacing
_geometries = st.tuples(st.integers(3, 8), st.integers(1, 3), st.sampled_from([1, 2, 3, 4])).filter(
    lambda g: g[1] < g[0]
)


@st.composite
def _image_and_config(draw):
    grid, erase, subpatch = draw(_geometries)
    patch = grid * subpatch
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(1, 3))
    height = rows * patch - draw(st.integers(0, patch - 1))
    width = cols * patch - draw(st.integers(0, patch - 1))
    height, width = max(height, 1), max(width, 1)
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    image = rng.random((height, width))
    delta = 1 if erase * 2 <= grid else 0
    config = EaszConfig(patch_size=patch, subpatch_size=subpatch, erase_per_row=erase,
                        intra_row_min_distance=delta, d_model=8, num_heads=2,
                        encoder_blocks=1, decoder_blocks=1, ffn_mult=1, loss_lambda=0.0)
    return image, config, seed


class TestEraseSqueezeInvariants:
    @given(data=_image_and_config())
    @settings(max_examples=30, deadline=None)
    def test_kept_pixels_survive_the_roundtrip_exactly(self, data):
        image, config, seed = data
        mask = proposed_mask(config.grid_size, config.erase_per_row,
                             config.intra_row_min_distance, seed=seed)
        squeezed, grid_shape, original_shape = erase_and_squeeze_image(
            image, mask, config.patch_size, config.subpatch_size)
        restored = unsqueeze_image(squeezed, mask, config.patch_size, config.subpatch_size,
                                   grid_shape, original_shape, fill="zero")
        restored = restored[: image.shape[0], : image.shape[1]]

        # build the pixel-level keep mask from the sub-patch mask
        padded, _ = image_to_patches(image, config.patch_size)[0:1][0], None
        patches, gshape, oshape = image_to_patches(image, config.patch_size)
        keep = np.kron(mask, np.ones((config.subpatch_size, config.subpatch_size)))
        keep_patches = np.stack([keep] * len(patches))
        keep_image = patches_to_image(keep_patches, gshape, oshape)[: image.shape[0],
                                                                    : image.shape[1]]
        kept = keep_image.astype(bool)
        assert np.allclose(restored[kept], image[kept])
        # erased pixels are zero-filled
        assert np.allclose(restored[~kept], 0.0)

    @given(data=_image_and_config())
    @settings(max_examples=30, deadline=None)
    def test_squeezed_shape_matches_formula(self, data):
        image, config, seed = data
        mask = proposed_mask(config.grid_size, config.erase_per_row,
                             config.intra_row_min_distance, seed=seed)
        squeezed, _, _ = erase_and_squeeze_image(image, mask, config.patch_size,
                                                 config.subpatch_size)
        expected = squeezed_shape(image.shape, config.patch_size, config.subpatch_size,
                                  config.erase_per_row)
        assert squeezed.shape == expected
        # the squeeze removes exactly the erased fraction of the padded image
        padded_pixels = expected[0] * expected[1] / (1.0 - config.erase_ratio)
        assert padded_pixels == pytest.approx(
            (image.shape[0] + (-image.shape[0]) % config.patch_size)
            * (image.shape[1] + (-image.shape[1]) % config.patch_size))


class TestSamplerInvariants:
    @given(grid=st.integers(3, 12), erase=st.integers(1, 4), seed=st.integers(0, 5000),
           delta=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_masks_always_balanced_and_constraint_respecting(self, grid, erase, seed, delta):
        erase = min(erase, grid - 1)
        if erase * (delta + 1) > grid:
            delta = 0
        sampler = RowConditionalSampler(grid, erase, intra_row_min_distance=delta)
        mask = sampler.sample_mask(seed=seed)
        erased_per_row = (mask == 0).sum(axis=1)
        # the squeeze step relies on row balance unconditionally
        assert np.all(erased_per_row == erase)
        # the intra-row distance constraint (Eq. 1) is guaranteed whenever a
        # greedy choice can never paint itself into a corner: each chosen
        # column blocks at most 2·δ+1 candidates, so grid > (T−1)·(2·δ+1)
        # leaves at least one legal column for every draw.  At tighter
        # packings the sampler's documented relaxation may kick in.
        if grid > (erase - 1) * (2 * delta + 1):
            for row in range(grid):
                columns = np.flatnonzero(mask[row] == 0)
                if columns.size > 1:
                    assert np.all(np.diff(np.sort(columns)) > delta)

    @given(grid=st.integers(3, 10), erase=st.integers(1, 3), seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_mask_transport_formats_agree(self, grid, erase, seed):
        erase = min(erase, grid - 1)
        delta = 1 if erase * 2 <= grid else 0
        spec = MaskSpec(grid_size=grid, erase_per_row=erase,
                        intra_row_min_distance=delta, seed=seed)
        mask = spec.generate()
        for method in ("bitpack", "rle", "seed"):
            payload = encode_mask(mask, spec=spec, method=method)
            assert np.array_equal(decode_mask(payload), mask)
