"""Tests for the Markdown experiment-report builder and the shared harness glue."""

from __future__ import annotations

import pytest

from repro.codecs import JpegCodec
from repro.experiments import evaluate_codec_on_dataset
from repro.experiments.report import ExperimentRecord, MarkdownReport, format_markdown_table


class TestFormatMarkdownTable:
    def test_basic_rendering(self):
        table = format_markdown_table(["codec", "bpp"], [["jpeg", 0.412], ["bpg", 0.382]])
        lines = table.splitlines()
        assert lines[0] == "| codec | bpp |"
        assert lines[1] == "|---|---|"
        assert "| jpeg | 0.412 |" in lines

    def test_floats_are_formatted_consistently(self):
        table = format_markdown_table(["x"], [[1.23456]])
        assert "| 1.235 |" in table

    def test_column_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_markdown_table(["a", "b"], [["only-one"]])


class TestExperimentRecord:
    def _record(self):
        return ExperimentRecord(
            experiment_id="Table II",
            title="Compression enhancement",
            headers=["codec", "bpp", "brisque"],
            paper_reference="JPEG 43.06 → 22.34 BRISQUE at ~0.41 BPP",
            status="partially reproduced",
        )

    def test_add_row_enforces_arity(self):
        record = self._record()
        record.add_row("jpeg", 0.41, 43.1)
        with pytest.raises(ValueError):
            record.add_row("jpeg", 0.41)

    def test_markdown_contains_reference_and_status_marker(self):
        record = self._record().add_row("jpeg", 0.41, 43.1)
        text = record.to_markdown()
        assert text.startswith("## Table II — Compression enhancement ◐")
        assert "*Paper reports:*" in text
        assert "| jpeg | 0.410 | 43.100 |" in text

    def test_invalid_status_is_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRecord("x", "y", ["a"], status="maybe")


class TestMarkdownReport:
    def test_summary_index_lists_all_records(self):
        report = MarkdownReport(title="Easz reproduction", preamble="CPU-scale run.")
        report.new_record("Fig. 1", "Motivation", ["codec", "ms"]).add_row("cheng", 18000)
        report.new_record("Fig. 6", "Efficiency", ["codec", "W"], status="reproduced")
        text = report.to_markdown()
        assert text.startswith("# Easz reproduction")
        assert "CPU-scale run." in text
        assert "| Fig. 1 | Motivation | reproduced |" in text
        assert text.count("## ") == 2

    def test_add_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            MarkdownReport().add({"not": "a record"})

    def test_write_round_trips_to_disk(self, tmp_path):
        report = MarkdownReport(title="r")
        report.new_record("Fig. 3", "Mask strategy", ["ratio", "mse"]).add_row(0.25, 1e-4)
        path = tmp_path / "report.md"
        size = report.write(path)
        assert size == path.stat().st_size
        assert "Fig. 3" in path.read_text()

    def test_report_from_real_evaluation(self, kodak_small):
        """The report builder consumes the harness's CodecEvaluation rows directly."""
        evaluation = evaluate_codec_on_dataset(JpegCodec(quality=70), kodak_small,
                                               max_images=1, full_reference=("psnr",))
        report = MarkdownReport(title="smoke")
        record = report.new_record("Table II", "JPEG row",
                                   ["codec", "bpp", "brisque", "pi", "tres"])
        record.add_row(*evaluation.row(["brisque", "pi", "tres"]))
        text = report.to_markdown()
        assert "jpeg-q70" in text
