"""Tests for the row-based conditional sampler and mask generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RowConditionalSampler,
    deserialize_mask,
    diagonal_mask,
    mask_erase_ratio,
    mask_summary,
    proposed_mask,
    random_mask,
    serialize_mask,
    uniform_mask,
)


class TestRowConditionalSampler:
    def test_mask_shape_and_dtype(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=2)
        mask = sampler.sample_mask(seed=0)
        assert mask.shape == (8, 8)
        assert mask.dtype == np.uint8
        assert set(np.unique(mask)) <= {0, 1}

    def test_exactly_t_erased_per_row(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=3)
        mask = sampler.sample_mask(seed=1)
        assert np.all((mask == 0).sum(axis=1) == 3)

    def test_erase_ratio_property(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=2)
        assert sampler.erase_ratio == pytest.approx(0.25)

    def test_intra_row_constraint_satisfied(self):
        sampler = RowConditionalSampler(grid_size=16, erase_per_row=3,
                                        intra_row_min_distance=2)
        mask = sampler.sample_mask(seed=2)
        for row in range(16):
            erased = np.flatnonzero(mask[row] == 0)
            gaps = np.diff(np.sort(erased))
            assert np.all(gaps > 2)

    def test_rejects_excessive_erase_per_row(self):
        with pytest.raises(ValueError):
            RowConditionalSampler(grid_size=4, erase_per_row=4)

    def test_rejects_infeasible_intra_constraint(self):
        with pytest.raises(ValueError):
            RowConditionalSampler(grid_size=8, erase_per_row=4, intra_row_min_distance=3)

    def test_sample_masks_batch(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=1)
        masks = sampler.sample_masks(5, seed=0)
        assert masks.shape == (5, 8, 8)
        # independent draws should not all coincide
        assert not all(np.array_equal(masks[0], masks[i]) for i in range(1, 5))

    def test_seeded_masks_are_reproducible(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=2)
        assert np.array_equal(sampler.sample_mask(seed=9), sampler.sample_mask(seed=9))

    def test_repr_mentions_parameters(self):
        sampler = RowConditionalSampler(grid_size=8, erase_per_row=2)
        assert "T=2" in repr(sampler)

    @given(st.integers(4, 16), st.integers(1, 3), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_row_balance_property(self, grid, erase, seed):
        erase = min(erase, grid - 1)
        if erase * 2 > grid:
            erase = grid // 2
        sampler = RowConditionalSampler(grid, erase)
        mask = sampler.sample_mask(seed=seed)
        assert np.all((mask == 0).sum(axis=1) == erase)
        assert mask_erase_ratio(mask) == pytest.approx(erase / grid)


class TestMaskStrategies:
    def test_proposed_mask_erase_count(self):
        mask = proposed_mask(8, 2, seed=0)
        assert (mask == 0).sum() == 16

    def test_random_mask_balanced_rows(self):
        mask = random_mask(8, 2, seed=0, balanced_rows=True)
        assert np.all((mask == 0).sum(axis=1) == 2)

    def test_random_mask_unbalanced_total(self):
        mask = random_mask(8, 2, seed=0, balanced_rows=False)
        assert (mask == 0).sum() == 16

    def test_random_mask_ignores_distance_constraints(self):
        """Over many draws the unconstrained sampler must produce at least one
        adjacent pair — the failure mode the paper's Fig. 2(a) illustrates."""
        found_adjacent = False
        for seed in range(30):
            mask = random_mask(8, 3, seed=seed)
            for row in mask:
                erased = np.flatnonzero(row == 0)
                if np.any(np.diff(np.sort(erased)) == 1):
                    found_adjacent = True
        assert found_adjacent

    def test_proposed_mask_avoids_adjacent_erasures(self):
        for seed in range(10):
            mask = proposed_mask(8, 2, intra_row_min_distance=1, seed=seed)
            for row in mask:
                erased = np.flatnonzero(row == 0)
                assert np.all(np.diff(np.sort(erased)) > 1)

    def test_diagonal_mask_structure(self):
        mask = diagonal_mask(8, erase_per_row=1)
        assert np.all((mask == 0).sum(axis=1) == 1)
        assert np.all((mask == 0).sum(axis=0) == 1)
        assert np.all(np.diag(mask) == 0)

    def test_diagonal_mask_multiple_per_row(self):
        mask = diagonal_mask(8, erase_per_row=2)
        assert np.all((mask == 0).sum(axis=1) == 2)

    def test_uniform_mask_factor_two(self):
        mask = uniform_mask(8, factor=2)
        assert mask.sum() == 32  # keeps exactly half
        assert np.all(mask.sum(axis=1) == 4)

    def test_mask_erase_ratio_values(self):
        assert mask_erase_ratio(np.ones((4, 4))) == 0.0
        assert mask_erase_ratio(np.zeros((4, 4))) == 1.0

    def test_mask_summary_fields(self):
        summary = mask_summary(proposed_mask(8, 2, seed=0))
        assert summary["grid_size"] == 8
        assert summary["erase_ratio"] == pytest.approx(0.25)
        assert summary["erased_per_row_min"] == summary["erased_per_row_max"] == 2
        assert summary["serialized_bytes"] > 0


class TestMaskSerialization:
    def test_roundtrip(self):
        mask = proposed_mask(16, 4, seed=3)
        assert np.array_equal(deserialize_mask(serialize_mask(mask)), mask)

    def test_serialized_size_within_paper_bound(self):
        """Paper: a 32×32 binary mask costs ≈128 bytes; ours must not exceed
        that by more than the 5-byte header."""
        mask = proposed_mask(32, 8, seed=1)
        assert len(serialize_mask(mask)) <= 133

    def test_structured_masks_compress_well(self):
        mask = diagonal_mask(32, erase_per_row=1)
        assert len(serialize_mask(mask)) < 120

    @given(st.integers(2, 32), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, grid, seed):
        erase = max(1, grid // 4)
        mask = random_mask(grid, erase, seed=seed)
        assert np.array_equal(deserialize_mask(serialize_mask(mask)), mask)
