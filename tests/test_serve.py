"""Tests for the ``repro.serve`` micro-batching service layer."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import EaszConfig, EaszDecoder, EaszEncoder, EaszReconstructor
from repro.serve import (
    AdmissionQueue,
    BatchPolicy,
    CompressionServer,
    LRUCache,
    MicroBatcher,
    PoissonLoadGenerator,
    QueueClosedError,
    ServerOverloadedError,
    ServerStats,
)


@pytest.fixture(scope="module")
def serve_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def serve_model(serve_config):
    model = EaszReconstructor(serve_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def packages(serve_config):
    rng = np.random.default_rng(0)
    encoder = EaszEncoder(serve_config, seed=0)
    mask = encoder.generate_mask()
    images = [rng.random((48, 64, 3)) for _ in range(4)] \
        + [rng.random((32, 32)) for _ in range(3)]
    return encoder.encode_batch(images, mask=mask)


# --------------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------------- #
class TestLRUCache:
    def test_hit_miss_accounting_and_eviction(self):
        cache = LRUCache(capacity=2, name="plans")
        loads = []
        cache.get("a", lambda: loads.append("a") or 1)
        cache.get("a", lambda: loads.append("a2") or 2)
        cache.get("b", lambda: loads.append("b") or 3)
        cache.get("c", lambda: loads.append("c") or 4)  # evicts "a"
        cache.get("a", lambda: loads.append("a3") or 5)
        assert loads == ["a", "b", "c", "a3"]
        assert cache.hits == 1 and cache.misses == 4 and cache.evictions == 2
        assert 0.0 < cache.hit_rate < 1.0
        stats = cache.stats()
        assert stats["name"] == "plans" and stats["size"] == 2

    def test_lru_order_refreshes_on_hit(self):
        cache = LRUCache(capacity=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("a", lambda: 0)  # refresh "a"
        cache.get("c", lambda: 3)  # should evict "b", not "a"
        assert "a" in cache and "b" not in cache

    def test_caches_none_values(self):
        cache = LRUCache(capacity=2)
        calls = []
        cache.get("k", lambda: calls.append(1))
        cache.get("k", lambda: calls.append(2))
        assert calls == [1]
        assert cache.hits == 1


# --------------------------------------------------------------------------- #
# admission queue
# --------------------------------------------------------------------------- #
class TestAdmissionQueue:
    def test_reject_policy_raises_when_full(self):
        queue = AdmissionQueue(max_depth=2, policy="reject")
        queue.put("a")
        queue.put("b")
        with pytest.raises(ServerOverloadedError):
            queue.put("c")
        assert queue.depth == 2

    def test_block_policy_times_out(self):
        queue = AdmissionQueue(max_depth=1, policy="block", put_timeout=0.05)
        queue.put("a")
        started = time.perf_counter()
        with pytest.raises(ServerOverloadedError):
            queue.put("b")
        assert time.perf_counter() - started >= 0.04

    def test_block_policy_admits_when_space_frees(self):
        queue = AdmissionQueue(max_depth=1, policy="block", put_timeout=2.0)
        queue.put("a")
        threading.Timer(0.02, queue.pop).start()
        assert queue.put("b") == 1

    def test_closed_queue_rejects_and_wakes(self):
        queue = AdmissionQueue(max_depth=4)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put("a")
        assert queue.pop(timeout=0.01) is None

    def test_take_matching_preserves_other_order(self):
        queue = AdmissionQueue(max_depth=8)
        for item in ["a1", "b1", "a2", "b2", "a3"]:
            queue.put(item)
        taken = queue.take_matching(lambda item: item.startswith("a"), limit=2)
        assert taken == ["a1", "a2"]
        remaining = [queue.pop(timeout=0.01) for _ in range(queue.depth)]
        assert remaining == ["b1", "b2", "a3"]


# --------------------------------------------------------------------------- #
# micro-batcher
# --------------------------------------------------------------------------- #
class _FakeRequest:
    def __init__(self, key, tag):
        self.batch_key = key
        self.tag = tag


class TestMicroBatcher:
    def test_groups_by_key_and_respects_cap(self):
        queue = AdmissionQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=3, max_wait_ms=0.0))
        for index in range(4):
            queue.put(_FakeRequest("k1", index))
        queue.put(_FakeRequest("k2", 99))
        batch = batcher.next_batch(timeout=0.01)
        assert [request.tag for request in batch] == [0, 1, 2]
        batch = batcher.next_batch(timeout=0.01)
        assert [request.tag for request in batch] == [3]
        batch = batcher.next_batch(timeout=0.01)
        assert [request.tag for request in batch] == [99]

    def test_idle_returns_none(self):
        queue = AdmissionQueue(max_depth=4)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4, max_wait_ms=1.0))
        assert batcher.next_batch(timeout=0.01) is None

    def test_waits_for_late_compatible_requests(self):
        queue = AdmissionQueue(max_depth=8)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=2, max_wait_ms=200.0,
                                                  poll_interval_ms=1.0))
        queue.put(_FakeRequest("k", "first"))
        threading.Timer(0.02, lambda: queue.put(_FakeRequest("k", "late"))).start()
        batch = batcher.next_batch(timeout=0.01)
        assert [request.tag for request in batch] == ["first", "late"]


# --------------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------------- #
class TestServerStats:
    def test_snapshot_percentiles_and_histogram(self):
        stats = ServerStats()
        stats.record_submitted()
        stats.record_queue_depth(3)
        stats.record_batch(2, queue_waits=[0.01, 0.02], latencies=[0.05, 0.15],
                           service_seconds=0.04)
        stats.record_batch(1, queue_waits=[0.0], latencies=[0.1], service_seconds=0.02)
        snapshot = stats.snapshot()
        assert snapshot["completed"] == 3
        assert snapshot["batch_size_histogram"] == {1: 1, 2: 1}
        assert snapshot["queue_depth_peak"] == 3
        assert snapshot["latency_p50_ms"] == pytest.approx(100.0)
        assert snapshot["latency_p99_ms"] <= 150.0 + 1e-6
        assert snapshot["service_seconds_total"] == pytest.approx(0.06)
        assert snapshot["mean_batch_size"] == pytest.approx(1.5)


# --------------------------------------------------------------------------- #
# end-to-end server
# --------------------------------------------------------------------------- #
class TestCompressionServer:
    def test_concurrent_submits_no_lost_or_duplicated_responses(
            self, serve_config, serve_model, packages):
        server = CompressionServer(
            model=serve_model, config=serve_config, num_workers=2, queue_depth=256,
            batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=5.0))
        decoder = EaszDecoder(model=serve_model, config=serve_config,
                              base_codec=JpegCodec(quality=75))
        results = {}
        errors = []
        repeats = 3

        def client(thread_id):
            try:
                pendings = []
                for repeat in range(repeats):
                    for index, package in enumerate(packages):
                        pendings.append(((repeat, index), server.submit(package)))
                for key, pending in pendings:
                    results[(thread_id, key)] = pending.result(timeout=120.0)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        with server:
            threads = [threading.Thread(target=client, args=(t,)) for t in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
            snapshot = server.stats.snapshot()

        assert not errors
        # every submission answered exactly once: 3 threads x repeats x packages
        assert len(results) == 3 * repeats * len(packages)
        request_ids = [response.request_id for response in results.values()]
        assert len(set(request_ids)) == len(request_ids)
        references = [decoder.decode(package) for package in packages]
        for (_thread_id, (_repeat, index)), response in results.items():
            assert response.image.shape == references[index].shape
            assert np.abs(response.image - references[index]).max() < 1e-5
        assert snapshot["completed"] == len(results)
        assert snapshot["failed"] == 0
        assert sum(size * count for size, count
                   in snapshot["batch_size_histogram"].items()) == len(results)
        assert snapshot["caches"]  # per-worker cache stats published

    def test_decode_kind_matches_decoder_exactly(self, serve_config, serve_model, packages):
        decoder = EaszDecoder(model=serve_model, config=serve_config,
                              base_codec=JpegCodec(quality=75))
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1) as server:
            response = server.submit(packages[0], kind="decode").result(timeout=60.0)
        reference = decoder.decode(packages[0], reconstruct=False)
        assert np.array_equal(response.image, reference)

    def test_submit_bytes_echoes_config_summary(self, serve_config, serve_model, packages):
        from repro.core import pack_package
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1) as server:
            response = server.submit_bytes(pack_package(packages[0])).result(timeout=60.0)
        assert response.config_summary["base_codec"] == "jpeg-q75"
        assert response.config_summary["patch_size"] == serve_config.patch_size

    def test_admission_control_rejects_burst(self, serve_config, serve_model, packages):
        server = CompressionServer(model=serve_model, config=serve_config,
                                   num_workers=1, queue_depth=1,
                                   batch_policy=BatchPolicy(max_batch_size=1,
                                                            max_wait_ms=0.0))
        admitted, rejected = [], 0
        with server:
            for _ in range(30):
                try:
                    admitted.append(server.submit(packages[0]))
                except ServerOverloadedError:
                    rejected += 1
            for pending in admitted:
                pending.result(timeout=60.0)
            snapshot = server.stats.snapshot()
        assert rejected > 0
        assert snapshot["rejected"] == rejected
        assert snapshot["completed"] == len(admitted)

    def test_corrupt_request_fails_alone_not_its_batch_mates(
            self, serve_config, serve_model, packages):
        import dataclasses
        healthy = packages[0]
        corrupt_payload = dataclasses.replace(
            healthy.codec_payload,
            payload=healthy.codec_payload.payload[:12] + b"\xff" * 6)
        corrupt = dataclasses.replace(healthy, codec_payload=corrupt_payload)
        # same mask/shape/codec -> both requests coalesce into one batch
        with CompressionServer(model=serve_model, config=serve_config, num_workers=1,
                               batch_policy=BatchPolicy(max_batch_size=4,
                                                        max_wait_ms=50.0)) as server:
            pending_corrupt = server.submit(corrupt)
            pending_healthy = server.submit(healthy)
            good = pending_healthy.result(timeout=120.0)
            with pytest.raises(ValueError):
                pending_corrupt.result(timeout=120.0)
            snapshot = server.stats.snapshot()
        assert good.image.shape == healthy.original_shape
        assert snapshot["failed"] == 1

    def test_stop_rejects_stranded_requests(self, serve_config, serve_model, packages):
        from repro.serve import QueueClosedError
        server = CompressionServer(model=serve_model, config=serve_config, num_workers=1)
        server.start()
        server.stopping = True  # workers drain and exit on their next idle poll
        for worker in server.workers:
            worker.join(timeout=30.0)
        stranded = server.submit(packages[0])  # queue still open: admitted
        server.stop()
        with pytest.raises(QueueClosedError):
            stranded.result(timeout=5.0)

    def test_submit_requires_started_server(self, serve_config, serve_model, packages):
        server = CompressionServer(model=serve_model, config=serve_config)
        with pytest.raises(RuntimeError, match="not started"):
            server.submit(packages[0])

    def test_rejects_unknown_kind(self, serve_config, serve_model, packages):
        with CompressionServer(model=serve_model, config=serve_config) as server, \
                pytest.raises(ValueError, match="kind"):
            server.submit(packages[0], kind="transcode")

    def test_codec_for_parses_registry_names(self, serve_config, serve_model):
        server = CompressionServer(model=serve_model, config=serve_config)
        codec = server.codec_for("jpeg-q30")
        assert codec.name == "jpeg-q30"
        assert server.codec_for("jpeg-q30") is codec  # cached prototype
        assert server.codec_for("png").name == "png"  # quality-less names
        assert server.codec_for("bpg-qp32").name == "bpg-qp32"
        assert server.codec_for(server.base_codec.name) is server.base_codec

    def test_codec_for_rejects_unresolvable_names(self, serve_config, serve_model):
        # decoding with mismatched tables would be silently wrong; must raise
        server = CompressionServer(model=serve_model, config=serve_config)
        with pytest.raises(ValueError, match="cannot resolve"):
            server.codec_for("no-such-codec")
        with pytest.raises(ValueError, match="cannot resolve"):
            server.codec_for("jpeg")  # bare family name, quality unknown

    def test_codec_prototype_cache_is_bounded(self, serve_config, serve_model):
        server = CompressionServer(model=serve_model, config=serve_config)
        for quality in range(1, server._codec_prototypes_max + 10):
            server.codec_for(f"jpeg-q{quality}")
        assert len(server._codec_prototypes) <= server._codec_prototypes_max + 1
        # the configured fallback codec is never evicted
        assert server.base_codec.name in server._codec_prototypes


# --------------------------------------------------------------------------- #
# load generator + M/D/1 validation
# --------------------------------------------------------------------------- #
class TestPoissonLoadGenerator:
    def test_replay_serves_everything_and_reports(self, serve_config, serve_model,
                                                  packages):
        from repro.edge import CameraNode, FleetSimulation, WIFI_TCP
        fleet = FleetSimulation(WIFI_TCP, [
            CameraNode("cam-a", images_per_hour=720.0),
            CameraNode("cam-b", images_per_hour=720.0),
        ])
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1, queue_depth=256,
                               batch_policy=BatchPolicy(max_batch_size=4,
                                                        max_wait_ms=2.0)) as server:
            generator = PoissonLoadGenerator(server, rng=np.random.default_rng(3))
            report = generator.replay_fleet(fleet, packages[:4], num_requests=12,
                                            speedup=50.0, timeout=120.0)
        assert report.completed == 12
        assert report.rejected == 0
        assert report.offered_rps == pytest.approx(0.4 * 50.0)
        assert report.latency_p99_ms >= report.latency_p50_ms > 0
        assert report.service_time_per_image_ms > 0
        assert 0 <= report.utilisation
        assert report.headline()

    def test_md1_prediction_brackets_light_load(self, serve_config, serve_model,
                                                packages):
        # at very light load both the observed wait and the M/D/1 prediction
        # must be far below the service time (sanity of the congestion bridge)
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1, queue_depth=64) as server:
            generator = PoissonLoadGenerator(server, rng=np.random.default_rng(4))
            report = generator.run(packages[:2], arrival_rate_rps=2.0,
                                   num_requests=6, timeout=120.0)
        assert not report.saturated
        assert report.utilisation < 0.5
        assert report.predicted_wait_md1_ms < report.service_time_per_image_ms
        assert report.observed_wait_mean_ms < report.latency_mean_ms

    def test_rejects_empty_and_bad_rate(self, serve_config, serve_model):
        with CompressionServer(model=serve_model, config=serve_config) as server:
            generator = PoissonLoadGenerator(server)
            with pytest.raises(ValueError):
                generator.run([], arrival_rate_rps=1.0, num_requests=1)
            with pytest.raises(ValueError):
                generator.run([object()], arrival_rate_rps=0.0, num_requests=1)
            with pytest.raises(ValueError):
                generator.run([object()], arrival_rate_rps=1.0, num_requests=0)
