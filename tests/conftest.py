"""Shared fixtures for the Easz reproduction test suite.

Everything is kept deliberately small (tiny images, tiny models, few training
steps) so the full suite runs in CPU-minutes; the benchmarks are where
realistic scales live.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.lockorder import lock_order_recording
from repro.core import EaszConfig, EaszReconstructor, EaszTrainer
from repro.datasets import CifarLikeDataset, KodakDataset, SyntheticImageGenerator


@pytest.fixture(autouse=True)
def lock_order_guard(request):
    """Record lock-acquisition order in every serving test.

    Locks created while a ``test_serve*`` test runs are instrumented; at
    teardown any ordering cycle or same-instance re-acquisition fails the
    test.  Set ``REPRO_LOCK_ORDER=0`` to opt out (e.g. when bisecting an
    unrelated failure).
    """
    if (not request.module.__name__.startswith("test_serve")
            or os.environ.get("REPRO_LOCK_ORDER", "1") == "0"):
        yield
        return
    with lock_order_recording() as recorder:
        yield
    problems = recorder.report()
    assert not problems, "lock-order violations:\n" + "\n".join(problems)


@pytest.fixture(scope="session")
def rng():
    """Session-wide deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_config():
    """Smallest useful Easz configuration (8×8 patches, 2×2 sub-patches)."""
    return EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=1,
                      d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="session")
def small_config():
    """Test-scale Easz configuration matching the benchmark defaults."""
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="session")
def gray_image():
    """A 64×80 grayscale natural-looking image."""
    generator = SyntheticImageGenerator(64, 80, color=False)
    return generator.generate(7)


@pytest.fixture(scope="session")
def rgb_image():
    """A 64×80 RGB natural-looking image."""
    generator = SyntheticImageGenerator(64, 80, color=True)
    return generator.generate(11)


@pytest.fixture(scope="session")
def kodak_small():
    """Two small Kodak-like images for integration tests."""
    return KodakDataset(num_images=2, height=64, width=96)


@pytest.fixture(scope="session")
def trained_tiny_model(tiny_config):
    """A briefly trained reconstructor (enough to beat an untrained one)."""
    dataset = CifarLikeDataset(num_images=128, size=tiny_config.patch_size, seed=5)
    trainer = EaszTrainer(config=tiny_config, use_perceptual_loss=False)
    trainer.pretrain(dataset, steps=60, batch_size=16)
    return trainer.model


@pytest.fixture(scope="session")
def untrained_tiny_model(tiny_config):
    """A freshly initialised reconstructor with the tiny configuration."""
    model = EaszReconstructor(tiny_config)
    model.eval()
    return model
