"""Equivalence tests for the vectorized fast paths (PR: plan-cached squeeze,
table-driven JPEG entropy coding, batched reconstruction).

Every fast path is checked against an independent straight-line reference
implementing the seed semantics with per-patch / per-row / per-bit loops:
squeeze and unsqueeze must be **array-equal** (bit-exact), the entropy coder
must produce **byte-identical** streams, and the batched RGB reconstruction
must match the per-channel formulation to float32 tolerance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.codecs.jpeg import (
    JpegCodec,
    _AC_LUMA_ENCODE,
    _DC_LUMA_ENCODE,
    _magnitude_bits,
    _magnitude_category,
)
from repro.codecs.jpeg_tables import ZIGZAG_ORDER
from repro.core import (
    EaszConfig,
    EaszReconstructor,
    erase_and_squeeze_image,
    get_squeeze_plan,
    patches_to_tokens,
    proposed_mask,
    reconstruct_image,
    squeeze_patch,
    tokens_to_patches,
    two_stage_patchify,
    unsqueeze_image,
    unsqueeze_patch,
)
from repro.core.patchify import (
    image_to_patches,
    patch_to_subpatches,
    subpatches_to_patch,
    subpatches_to_tokens,
)
from repro.entropy.bitio import BitReader, BitWriter


# --------------------------------------------------------------------- #
# reference implementations (seed semantics, written independently with
# explicit loops over rows/patches/bits)
# --------------------------------------------------------------------- #
def ref_squeeze_patch(patch, mask, b):
    mask = np.asarray(mask, dtype=bool)
    sub = patch_to_subpatches(patch, b)
    rows = [sub[r][mask[r]] for r in range(mask.shape[0])]
    packed = np.stack(rows)  # (grid, kept, b, b[, C])
    kept = packed.shape[1]
    if packed.ndim == 5:
        return packed.transpose(0, 2, 1, 3, 4).reshape(
            packed.shape[0] * b, kept * b, packed.shape[4])
    return packed.transpose(0, 2, 1, 3).reshape(packed.shape[0] * b, kept * b)


def ref_unsqueeze_patch(squeezed, mask, b, fill):
    mask = np.asarray(mask, dtype=bool)
    grid = mask.shape[0]
    kept = int(mask[0].sum())
    block = np.asarray(squeezed)
    if block.ndim == 3:
        packed = block.reshape(grid, b, kept, b, block.shape[2]).transpose(0, 2, 1, 3, 4)
    else:
        packed = block.reshape(grid, b, kept, b).transpose(0, 2, 1, 3)
    out = np.zeros((grid, grid) + packed.shape[2:], dtype=np.float64)
    for r in range(grid):
        kept_cols = np.flatnonzero(mask[r])
        out[r, kept_cols] = packed[r]
        if fill == "zero" or kept_cols.size == 0:
            continue
        for c in np.flatnonzero(~mask[r]):
            if fill == "neighbor":
                nearest = kept_cols[np.argmin(np.abs(kept_cols - c))]
                out[r, c] = out[r, nearest]
            else:
                out[r, c] = packed[r].mean(axis=0)
    return subpatches_to_patch(out)


def ref_encode_channel(quantised):
    """Symbol-at-a-time JPEG entropy encode of a luma channel (seed loops)."""
    dc_code, dc_len = _DC_LUMA_ENCODE
    ac_code, ac_len = _AC_LUMA_ENCODE
    writer = BitWriter()
    zz = quantised.reshape(-1, 64)[:, ZIGZAG_ORDER]
    previous_dc = 0
    for block in zz:
        dc = int(block[0])
        diff = dc - previous_dc
        previous_dc = dc
        size = _magnitude_category(diff)
        writer.write_bits(int(dc_code[size]), int(dc_len[size]))
        if size:
            writer.write_bits(_magnitude_bits(diff, size), size)
        run = 0
        nz = np.nonzero(block[1:])[0]
        last = nz[-1] + 1 if nz.size else 0
        for index in range(1, last + 1):
            value = int(block[index])
            if value == 0:
                run += 1
                continue
            while run > 15:
                writer.write_bits(int(ac_code[0xF0]), int(ac_len[0xF0]))
                run -= 16
            size = _magnitude_category(value)
            sym = (run << 4) | size
            writer.write_bits(int(ac_code[sym]), int(ac_len[sym]))
            writer.write_bits(_magnitude_bits(value, size), size)
            run = 0
        if last < 63:
            writer.write_bits(int(ac_code[0x00]), int(ac_len[0x00]))
    return writer.getvalue()


# geometry strategy: (grid, erase_per_row, subpatch) with a feasible sampler
_geometries = st.tuples(
    st.integers(3, 8), st.integers(1, 3), st.sampled_from([1, 2, 3, 4])
).filter(lambda g: g[1] < g[0])


@st.composite
def _image_mask_geometry(draw):
    grid, erase, b = draw(_geometries)
    patch = grid * b
    rows, cols = draw(st.integers(1, 3)), draw(st.integers(1, 3))
    height = max(1, rows * patch - draw(st.integers(0, patch - 1)))
    width = max(1, cols * patch - draw(st.integers(0, patch - 1)))
    color = draw(st.booleans())
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    shape = (height, width, 3) if color else (height, width)
    image = rng.random(shape)
    delta = 1 if erase * 2 <= grid else 0
    mask = proposed_mask(grid, erase, delta, seed=seed)
    return image, mask, patch, b


class TestSqueezePlanEquivalence:
    @given(data=_image_mask_geometry(), direction=st.sampled_from(["horizontal", "vertical"]))
    @settings(max_examples=40, deadline=None)
    def test_squeeze_image_matches_per_patch_reference(self, data, direction):
        image, mask, patch_size, b = data
        use_mask = mask if direction == "horizontal" else mask.T
        squeezed, grid_shape, original_shape = erase_and_squeeze_image(
            image, use_mask, patch_size, b, direction=direction)
        patches, gshape, _ = image_to_patches(image, patch_size)
        for patch in patches:
            if direction == "vertical":
                flipped = patch.swapaxes(0, 1)
                expected = ref_squeeze_patch(flipped, use_mask.T, b).swapaxes(0, 1)
            else:
                expected = ref_squeeze_patch(patch, use_mask, b)
            got = squeeze_patch(patch, use_mask, b, direction=direction)
            assert np.array_equal(got, expected)
        assert grid_shape == gshape

    @given(data=_image_mask_geometry(), fill=st.sampled_from(["zero", "neighbor", "mean"]))
    @settings(max_examples=40, deadline=None)
    def test_unsqueeze_matches_per_row_reference(self, data, fill):
        image, mask, patch_size, b = data
        patches, _, _ = image_to_patches(image, patch_size)
        patch = patches[0]
        squeezed = squeeze_patch(patch, mask, b)
        got = unsqueeze_patch(squeezed, mask, b, fill=fill)
        expected = ref_unsqueeze_patch(squeezed, mask, b, fill)
        assert np.array_equal(got, expected)

    @given(data=_image_mask_geometry(), fill=st.sampled_from(["zero", "neighbor", "mean"]))
    @settings(max_examples=25, deadline=None)
    def test_image_roundtrip_restores_kept_pixels(self, data, fill):
        image, mask, patch_size, b = data
        squeezed, grid_shape, original_shape = erase_and_squeeze_image(
            image, mask, patch_size, b)
        restored = unsqueeze_image(squeezed, mask, patch_size, b, grid_shape,
                                   original_shape, fill=fill)
        height, width = image.shape[:2]
        restored = restored[:height, :width]
        # pixel-level keep mask: the sub-patch mask tiled over the patch grid
        keep = np.kron(np.asarray(mask, bool), np.ones((b, b), dtype=bool))
        rows, cols = grid_shape
        tile = np.tile(keep, (rows, cols))[:height, :width]
        assert np.allclose(np.asarray(restored)[tile], np.asarray(image)[tile])

    def test_plan_cache_returns_same_object(self):
        mask = proposed_mask(4, 1, seed=0)
        assert get_squeeze_plan(mask, 2) is get_squeeze_plan(mask.copy(), 2)
        assert get_squeeze_plan(mask, 2) is not get_squeeze_plan(mask, 2, "vertical")


class TestBitioEquivalence:
    @given(st.lists(st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(1, 24)),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_write_tokens_matches_sequential_write_bits(self, fields):
        sequential = BitWriter()
        for value, width in fields:
            sequential.write_bits(value & ((1 << width) - 1), width)
        batched = BitWriter()
        values = np.array([v & ((1 << w) - 1) for v, w in fields], dtype=np.uint64)
        lengths = np.array([w for _, w in fields], dtype=np.int64)
        batched.write_tokens(values, lengths)
        assert batched.getvalue() == sequential.getvalue()
        assert batched.bit_length == sequential.bit_length

    @given(st.lists(st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(1, 24)),
                    min_size=1, max_size=100), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_write_tokens_after_partial_bits(self, fields, prefix_bits):
        sequential = BitWriter()
        batched = BitWriter()
        for writer in (sequential, batched):
            writer.write_bits((1 << prefix_bits) - 1, prefix_bits)
        values = np.array([v & ((1 << w) - 1) for v, w in fields], dtype=np.uint64)
        lengths = np.array([w for _, w in fields], dtype=np.int64)
        for value, width in fields:
            sequential.write_bits(value & ((1 << width) - 1), width)
        batched.write_tokens(values, lengths)
        assert batched.getvalue() == sequential.getvalue()

    @given(st.binary(min_size=0, max_size=64),
           st.lists(st.integers(1, 25), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_read_bits_matches_per_bit_reads(self, payload, widths):
        fast = BitReader(payload)
        slow = BitReader(payload)
        for width in widths:
            expected = 0
            for _ in range(width):
                expected = (expected << 1) | slow.read_bit()
            assert fast.peek_bits(width) == expected
            assert fast.read_bits(width) == expected
            assert fast.position == slow.position

    def test_words32_window_matches_peek(self):
        rng = np.random.default_rng(0)
        payload = bytes(rng.integers(0, 256, size=50, dtype=np.uint8))
        reader = BitReader(payload)
        words, total = reader.as_words32()
        for pos in range(0, total - 16, 7):
            window = (words[pos >> 3] >> (16 - (pos & 7))) & 0xFFFF
            probe = BitReader(payload)
            probe.skip_bits(pos)
            assert window == probe.peek_bits(16)


class TestJpegEntropyEquivalence:
    @given(st.integers(0, 2 ** 31 - 1), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_encode_channel_bitstream_matches_symbol_reference(self, seed, blocks):
        rng = np.random.default_rng(seed)
        # heavy-tailed coefficients exercise ZRL runs and every size category
        quantised = (rng.normal(0, 12, size=(blocks, 8, 8)) *
                     (rng.random((blocks, 8, 8)) < 0.25)).astype(np.int32)
        codec = JpegCodec(quality=75)
        writer = BitWriter()
        codec._encode_channel(writer, quantised, _DC_LUMA_ENCODE, _AC_LUMA_ENCODE)
        assert writer.getvalue() == ref_encode_channel(quantised)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_entropy_roundtrip_recovers_exact_coefficients(self, seed):
        rng = np.random.default_rng(seed)
        quantised = (rng.normal(0, 20, size=(6, 8, 8)) *
                     (rng.random((6, 8, 8)) < 0.3)).astype(np.int32)
        codec = JpegCodec(quality=75)
        writer = BitWriter()
        codec._encode_channel(writer, quantised, _DC_LUMA_ENCODE, _AC_LUMA_ENCODE)
        from repro.codecs.jpeg import _DC_LUMA_DECODE, _AC_LUMA_DECODE
        reader = BitReader(writer.getvalue())
        decoded = codec._decode_channel(reader, 6, _DC_LUMA_DECODE, _AC_LUMA_DECODE)
        assert np.array_equal(decoded, quantised)

    @given(st.integers(0, 2 ** 31 - 1), st.booleans(), st.sampled_from([35, 75, 95]))
    @settings(max_examples=10, deadline=None)
    def test_full_codec_roundtrip_ragged_sizes(self, seed, color, quality):
        rng = np.random.default_rng(seed)
        height, width = int(rng.integers(9, 70)), int(rng.integers(9, 70))
        image = rng.random((height, width, 3) if color else (height, width))
        codec = JpegCodec(quality=quality)
        reconstruction, compressed = codec.roundtrip(image)
        assert reconstruction.shape == image.shape
        assert 0.0 <= reconstruction.min() and reconstruction.max() <= 1.0


class TestPatchifyAndReconstructEquivalence:
    @given(st.integers(0, 2 ** 31 - 1), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_two_stage_patchify_matches_per_patch_loop(self, seed, color):
        rng = np.random.default_rng(seed)
        shape = (37, 53, 3) if color else (37, 53)
        image = rng.random(shape)
        tokens, grid_shape, original_shape = two_stage_patchify(image, 16, 4)
        patches, gshape, oshape = image_to_patches(image, 16)
        expected = np.stack([
            subpatches_to_tokens(patch_to_subpatches(patch, 4)) for patch in patches
        ])
        assert np.array_equal(tokens, expected)
        assert grid_shape == gshape and original_shape == oshape

    @given(st.integers(0, 2 ** 31 - 1), st.sampled_from([1, 3]))
    @settings(max_examples=20, deadline=None)
    def test_batched_token_helpers_roundtrip(self, seed, channels):
        rng = np.random.default_rng(seed)
        shape = (5, 16, 16, channels) if channels > 1 else (5, 16, 16)
        patches = rng.random(shape)
        tokens = patches_to_tokens(patches, 4)
        back = tokens_to_patches(tokens, 4, 4, channels)
        assert np.array_equal(back, patches)
        # agrees with the single-patch helpers
        one = subpatches_to_tokens(patch_to_subpatches(patches[0], 4))
        assert np.array_equal(tokens[0], one)

    def test_rgb_batched_reconstruction_matches_per_channel(self):
        config = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=1,
                            d_model=16, num_heads=2, encoder_blocks=1,
                            decoder_blocks=1, ffn_mult=1, loss_lambda=0.0)
        model = EaszReconstructor(config)
        mask = proposed_mask(config.grid_size, 1, seed=3)
        rng = np.random.default_rng(0)
        image = rng.random((24, 24, 3))
        batched = reconstruct_image(model, image, mask)
        per_channel = np.stack([
            reconstruct_image(model, image[..., c], mask) for c in range(3)
        ], axis=-1)
        assert batched.shape == image.shape
        assert np.allclose(batched, per_channel, atol=1e-5)

    def test_fast_inference_matches_autograd_forward(self):
        config = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=1,
                            d_model=16, num_heads=2, encoder_blocks=2,
                            decoder_blocks=2, ffn_mult=2, loss_lambda=0.0)
        model = EaszReconstructor(config)
        mask = proposed_mask(config.grid_size, 1, seed=1)
        tokens = np.random.default_rng(2).random(
            (7, config.tokens_per_patch, config.token_dim))
        with nn.no_grad():
            reference = model.forward(tokens, mask).data
        fast = model.reconstruct_tokens(tokens, mask, keep_original=False)
        assert np.allclose(fast, reference, atol=1e-5)

    def test_scatter_plan_cached_per_mask(self):
        config = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=1,
                            d_model=16, num_heads=2, encoder_blocks=1,
                            decoder_blocks=1, ffn_mult=1, loss_lambda=0.0)
        model = EaszReconstructor(config)
        mask = proposed_mask(config.grid_size, 1, seed=0)
        first = model._mask_plan(mask)
        second = model._mask_plan(np.array(mask))
        assert first is second
        other = model._mask_plan(proposed_mask(config.grid_size, 1, seed=7))
        assert other is not first
