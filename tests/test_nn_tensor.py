"""Tests for the autograd tensor (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad


def numeric_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        delta = np.zeros_like(x)
        delta[idx] = eps
        grad[idx] = (fn(x + delta) - fn(x - delta)) / (2 * eps)
        it.iternext()
    return grad


small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False),
)


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_construction_preserves_int_dtype(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int64))
        assert t.dtype == np.int64

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(2.5)
        assert float(t.data) == 2.5

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_detach_stops_gradient(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.array_equal(d.data, t.data)

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_requires_grad_error(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor([1.0], requires_grad=True)
            assert not t.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        (a - 2.0).backward()
        assert np.allclose(a.grad, [1.0])
        b = Tensor([5.0], requires_grad=True)
        (2.0 - b).backward()
        assert np.allclose(b.grad, [-1.0])

    def test_div_gradient(self):
        a = Tensor([4.0], requires_grad=True)
        (a / 2.0).backward()
        assert np.allclose(a.grad, [0.5])

    def test_rdiv_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 / a).backward()
        assert np.allclose(a.grad, [-0.25])

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([3.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_keepdim_axis(self):
        a = Tensor(np.ones((2, 1)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 1)
        assert np.allclose(a.grad, [[3.0], [3.0]])

    def test_matmul_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_gradient(lambda x: float((x @ b_val).sum()), a_val)
        num_b = numeric_gradient(lambda x: float((a_val @ x).sum()), b_val)
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_batched_matmul_gradient_shape(self):
        a = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(2).normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()
        assert np.allclose(a.grad, [4.0])

    def test_comparison_returns_numpy(self):
        a = Tensor([1.0, 3.0])
        assert isinstance(a > 2.0, np.ndarray)
        assert (a > 2.0).tolist() == [False, True]

    @given(small_arrays)
    @settings(max_examples=25, deadline=None)
    def test_add_backward_is_ones(self, values):
        t = Tensor(values, requires_grad=True)
        (t + 1.0).sum().backward()
        assert np.allclose(t.grad, np.ones_like(values))

    @given(small_arrays)
    @settings(max_examples=25, deadline=None)
    def test_mul_by_two_backward_is_twos(self, values):
        t = Tensor(values, requires_grad=True)
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, 2.0 * np.ones_like(values))


class TestElementwiseFunctions:
    @pytest.mark.parametrize("method,reference", [
        ("exp", np.exp),
        ("tanh", np.tanh),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("relu", lambda x: np.maximum(x, 0)),
        ("abs", np.abs),
    ])
    def test_forward_matches_numpy(self, method, reference):
        values = np.linspace(-2, 2, 7)
        out = getattr(Tensor(values), method)()
        assert np.allclose(out.data, reference(values))

    @pytest.mark.parametrize("method", ["exp", "tanh", "sigmoid", "gelu", "log"])
    def test_gradient_matches_numeric(self, method):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.1, 2.0, size=(2, 3))
        t = Tensor(values, requires_grad=True)
        getattr(t, method)().sum().backward()
        numeric = numeric_gradient(lambda x: float(getattr(Tensor(x), method)().sum().data), values)
        assert np.allclose(t.grad, numeric, atol=1e-4)

    def test_sqrt(self):
        t = Tensor([4.0], requires_grad=True)
        t.sqrt().backward()
        assert np.allclose(t.grad, [0.25])

    def test_clip_gradient_masks_outside(self):
        t = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_routes_to_larger(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        out = t.softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient_matches_numeric(self):
        values = np.random.default_rng(1).normal(size=(2, 3))
        t = Tensor(values, requires_grad=True)
        t.softmax(axis=-1)[0, 1].backward()
        numeric = numeric_gradient(
            lambda x: float(Tensor(x).softmax(axis=-1).data[0, 1]), values)
        assert np.allclose(t.grad, numeric, atol=1e-5)

    def test_log_softmax_consistent_with_softmax(self):
        t = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        assert np.allclose(np.exp(t.log_softmax().data), t.softmax().data)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_mean_gradient_is_uniform(self):
        t = Tensor(np.ones((4, 5)), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, np.full((4, 5), 1.0 / 20))

    def test_var_matches_numpy(self):
        values = np.random.default_rng(0).normal(size=(3, 7))
        assert np.allclose(Tensor(values).var(axis=1).data, values.var(axis=1))

    def test_max_gradient_to_argmax(self):
        t = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_roundtrip_gradient(self):
        t = Tensor(np.arange(12, dtype=float), requires_grad=True)
        t.reshape(3, 4).sum().backward()
        assert t.grad.shape == (12,)

    def test_reshape_accepts_tuple(self):
        t = Tensor(np.arange(12, dtype=float))
        assert t.reshape((3, 4)).shape == (3, 4)

    def test_transpose_default_swaps_last_two(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (2, 4, 3)
        assert t.T.shape == (2, 4, 3)

    def test_transpose_explicit_axes_gradient(self):
        t = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        t.transpose(2, 0, 1).sum().backward()
        assert t.grad.shape == (2, 3, 4)

    def test_getitem_gradient_scatter(self):
        t = Tensor(np.zeros(5), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(t.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_pad_and_gradient(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = t.pad(((1, 1), (0, 2)), value=7.0)
        assert padded.shape == (4, 4)
        assert padded.data[0, 0] == 7.0
        padded.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 2)))

    def test_concatenate_gradient_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        Tensor.concatenate([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, np.ones(3))

    @given(small_arrays)
    @settings(max_examples=25, deadline=None)
    def test_sum_then_mean_equals_numpy(self, values):
        t = Tensor(values)
        assert np.allclose(t.sum().data, values.sum())
        assert np.allclose(t.mean().data, values.mean())


class TestGraphBehaviour:
    def test_chain_rule_through_deep_graph(self):
        x = Tensor([0.5], requires_grad=True)
        y = ((x * 3.0).tanh() + x ** 2).exp()
        y.backward()
        numeric = numeric_gradient(
            lambda v: float(np.exp(np.tanh(v * 3.0) + v ** 2)[0]), np.array([0.5]))
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_diamond_graph_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        assert np.allclose(x.grad, [7.0])

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph_construction(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
