"""Tests for the adaptive compression-level controllers."""

from __future__ import annotations

import pytest

from repro.codecs import JpegCodec
from repro.core import (
    BandwidthAdaptiveController,
    BitrateController,
    EaszConfig,
    EraseRatioSchedule,
)
from repro.edge import WirelessChannel


@pytest.fixture(scope="module")
def config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=1, decoder_blocks=1,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def controller(config):
    return BitrateController(config, JpegCodec(quality=80))


class TestBitrateController:
    def test_bpp_decreases_with_erase_level(self, controller, kodak_small):
        image = kodak_small[0]
        bpps = [controller.measure(image, level)[1] for level in range(4)]
        assert all(later < earlier for earlier, later in zip(bpps, bpps[1:]))

    def test_select_prefers_least_erasure(self, controller, kodak_small):
        image = kodak_small[0]
        bpp_no_erase = controller.measure(image, 0)[1]
        result = controller.select(image, target_bpp=bpp_no_erase + 0.1)
        assert result.erase_per_row == 0
        assert result.met_target

    def test_select_meets_reachable_target(self, controller, kodak_small):
        image = kodak_small[0]
        bpp_max_erase = controller.measure(image, 3)[1]
        result = controller.select(image, target_bpp=bpp_max_erase + 0.05)
        assert result.met_target
        assert result.achieved_bpp <= bpp_max_erase + 0.05

    def test_unreachable_target_returns_max_level(self, controller, kodak_small):
        result = controller.select(kodak_small[0], target_bpp=1e-4)
        assert result.erase_per_row == controller.max_erase_per_row
        assert not result.met_target

    def test_candidates_are_recorded(self, controller, kodak_small):
        result = controller.select(kodak_small[0], target_bpp=1e-4)
        assert result.evaluations == len(result.candidates) == 4

    def test_rejects_non_positive_target(self, controller, kodak_small):
        with pytest.raises(ValueError):
            controller.select(kodak_small[0], target_bpp=0.0)

    def test_config_for_returns_tuned_config(self, controller, kodak_small):
        tuned, result = controller.config_for(kodak_small[0], target_bpp=0.9)
        assert tuned.erase_per_row == result.erase_per_row
        assert tuned.patch_size == controller.config.patch_size

    def test_max_erase_per_row_is_clamped(self, config):
        clamped = BitrateController(config, JpegCodec(quality=80), max_erase_per_row=99)
        assert clamped.max_erase_per_row == config.grid_size - 1


class TestBandwidthAdaptiveController:
    def test_byte_budget_scales_with_deadline(self, config):
        channel = WirelessChannel(bandwidth_mbps=8.0, per_transfer_overhead_ms=100.0)
        controller = BandwidthAdaptiveController(channel, config, JpegCodec(quality=80))
        assert controller.byte_budget(300.0) > controller.byte_budget(150.0)

    def test_budget_is_zero_below_overhead(self, config):
        channel = WirelessChannel(per_transfer_overhead_ms=120.0)
        controller = BandwidthAdaptiveController(channel, config, JpegCodec(quality=80))
        assert controller.byte_budget(100.0) == 0

    def test_select_raises_for_impossible_deadline(self, config, kodak_small):
        channel = WirelessChannel(per_transfer_overhead_ms=120.0)
        controller = BandwidthAdaptiveController(channel, config, JpegCodec(quality=80))
        with pytest.raises(ValueError, match="deadline"):
            controller.select(kodak_small[0], deadline_ms=50.0)

    def test_tighter_deadline_needs_more_erasure(self, config, kodak_small):
        channel = WirelessChannel(bandwidth_mbps=0.6, per_transfer_overhead_ms=50.0)
        controller = BandwidthAdaptiveController(channel, config, JpegCodec(quality=90))
        relaxed = controller.select(kodak_small[0], deadline_ms=2000.0)
        tight = controller.select(kodak_small[0], deadline_ms=200.0)
        assert tight.erase_per_row >= relaxed.erase_per_row

    def test_loss_factor_shrinks_budget(self, config):
        lossless = WirelessChannel(loss_retransmission_factor=1.0)
        lossy = WirelessChannel(loss_retransmission_factor=1.5)
        a = BandwidthAdaptiveController(lossless, config, JpegCodec())
        b = BandwidthAdaptiveController(lossy, config, JpegCodec())
        assert b.byte_budget(400.0) < a.byte_budget(400.0)


class TestEraseRatioSchedule:
    def test_update_moves_throughput_towards_observation(self, config):
        schedule = EraseRatioSchedule(config, initial_throughput_bps=1e6, smoothing=0.5,
                                      overhead_ms=0.0)
        schedule.update(transmitted_bytes=125_000, observed_ms=1000.0)  # 1 Mbps observed
        assert schedule.throughput_bps == pytest.approx(1e6, rel=1e-6)
        schedule.update(transmitted_bytes=250_000, observed_ms=1000.0)  # 2 Mbps observed
        assert 1e6 < schedule.throughput_bps < 2e6

    def test_history_is_recorded(self, config):
        schedule = EraseRatioSchedule(config)
        schedule.update(10_000, 200.0)
        schedule.update(12_000, 180.0)
        assert len(schedule.history) == 2
        assert schedule.history[0]["bytes"] == 10_000

    def test_byte_budget_uses_deadline_minus_overhead(self, config):
        schedule = EraseRatioSchedule(config, frame_deadline_ms=500.0, overhead_ms=100.0,
                                      initial_throughput_bps=8e6)
        assert schedule.byte_budget() == int(8e6 * 0.4 / 8.0)

    def test_erase_level_increases_when_throughput_drops(self, config):
        schedule = EraseRatioSchedule(config, frame_deadline_ms=400.0, overhead_ms=100.0,
                                      initial_throughput_bps=20e6, smoothing=1.0)
        density = 0.2  # bytes per pixel at zero erase
        generous = schedule.erase_per_row_for((128, 192, 3), density)
        schedule.update(transmitted_bytes=5_000, observed_ms=600.0)  # throughput collapses
        constrained = schedule.erase_per_row_for((128, 192, 3), density)
        assert constrained >= generous
        assert 0 <= constrained <= config.grid_size - 1

    def test_zero_density_requires_no_erasure(self, config):
        schedule = EraseRatioSchedule(config)
        assert schedule.erase_per_row_for((64, 64), 0.0) == 0
