"""Tests for the runtime lock-order recorder (repro.analysis.lockorder)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockorder import (InstrumentedLock, LockOrderError,
                                      LockOrderRecorder, lock_order_recording)


def test_patch_is_scoped():
    original = threading.Lock
    with lock_order_recording():
        lock = threading.Lock()
        assert isinstance(lock, InstrumentedLock)
    assert threading.Lock is original
    assert isinstance(threading.Lock(), type(original()))


def test_basic_acquire_release_records_nothing():
    with lock_order_recording() as recorder:
        lock = threading.Lock()
        with lock:
            pass
        lock.acquire()
        lock.release()
    assert recorder.edges == {}
    assert recorder.report() == []


def test_nested_acquisition_records_edge():
    with lock_order_recording() as recorder:
        outer = threading.Lock()
        inner = threading.Lock()
        with outer:
            with inner:
                pass
    assert len(recorder.edges) == 1
    (edge,) = recorder.edges
    assert edge[0] != edge[1]
    assert recorder.cycles() == []


def test_consistent_order_has_no_cycle():
    with lock_order_recording() as recorder:
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
    assert recorder.cycles() == []
    recorder.check()  # must not raise


def test_conflicting_orders_detected_as_cycle():
    with lock_order_recording() as recorder:
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    cycles = recorder.cycles()
    assert len(cycles) == 1
    assert cycles[0][0] == cycles[0][-1]
    problems = recorder.report()
    assert problems and "cycle" in problems[0]
    with pytest.raises(LockOrderError):
        recorder.check()


def test_cross_thread_inversion_detected():
    """The deadlock-waiting-to-happen shape: two threads, opposite orders."""
    with lock_order_recording() as recorder:
        a = threading.Lock()
        b = threading.Lock()
        barrier = threading.Barrier(2)

        def forward():
            barrier.wait()
            with a:
                with b:
                    pass

        def backward():
            barrier.wait()
            # serialised by the join below, so the test never actually
            # deadlocks — the recorder still sees both orders
            pass

        t = threading.Thread(target=forward)
        t2 = threading.Thread(target=backward)
        t.start(), t2.start()
        t.join(), t2.join()
        with b:
            with a:
                pass
    assert recorder.cycles()


def test_same_instance_reacquisition_raises():
    with lock_order_recording() as recorder:
        lock = threading.Lock()
        with lock:
            with pytest.raises(LockOrderError):
                lock.acquire()
    assert recorder.violations
    assert "re-acquired" in recorder.violations[0]


def test_same_site_different_instances_not_a_cycle():
    """N instances from one creation site (e.g. per-shard locks) are one node."""
    with lock_order_recording() as recorder:

        def make():
            return threading.Lock()  # single creation site for both

        first, second = make(), make()
        with first:
            with second:
                pass
        with second:
            with first:
                pass
    # self-edges on one site are excluded: instance order on same-site locks
    # is not resolvable statically, and per-instance deadlocks surface through
    # the re-acquisition check instead
    assert recorder.cycles() == []


def test_nonblocking_acquire_does_not_false_positive():
    with lock_order_recording() as recorder:
        lock = threading.Lock()
        with lock:
            assert lock.acquire(False) is False  # probe, not a deadlock
    assert recorder.violations == []


def test_condition_built_on_instrumented_lock_works():
    with lock_order_recording() as recorder:
        lock = threading.Lock()
        condition = threading.Condition(lock)
        hits = []

        def consumer():
            with condition:
                while not hits:
                    condition.wait(timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        with condition:
            hits.append(1)
            condition.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
    recorder.check()


def test_locks_created_before_recording_still_work():
    lock = threading.Lock()
    with lock_order_recording() as recorder:
        with lock:  # a real lock, not instrumented — must not confuse anything
            instrumented = threading.Lock()
            with instrumented:
                pass
    recorder.check()


def test_recorder_thread_isolation():
    """Held stacks are per-thread: parallel holders create no fake edges."""
    # the barriers are built outside the patch: Barrier's internal Condition
    # would otherwise be instrumented too, and its (real, harmless) nesting
    # under the held lock is not what this test is about
    start = threading.Barrier(2)
    done = threading.Barrier(2)
    with lock_order_recording() as recorder:
        a = threading.Lock()
        b = threading.Lock()

        def hold(lock):
            with lock:
                start.wait(timeout=5.0)
                done.wait(timeout=5.0)

        threads = [threading.Thread(target=hold, args=(lock,))
                   for lock in (a, b)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
    assert recorder.edges == {}


def test_recorder_is_reusable_outside_patch():
    recorder = LockOrderRecorder()
    assert recorder.report() == []
    recorder.check()
