"""Tests for attention, transformer blocks and stacks."""

import numpy as np
import pytest

from repro import nn


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(16, 4)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(3, 7, 16)))
        assert attn(x).shape == (3, 7, 16)

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_gradients_reach_all_projections(self):
        attn = nn.MultiHeadSelfAttention(8, 2)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)), requires_grad=True)
        (attn(x) ** 2).mean().backward()
        for _, param in attn.named_parameters():
            assert param.grad is not None
        assert np.isfinite(x.grad).all()

    def test_permutation_equivariance_without_positional_info(self):
        attn = nn.MultiHeadSelfAttention(8, 2)
        attn.eval()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 5, 8))
        perm = rng.permutation(5)
        with nn.no_grad():
            out = attn(nn.Tensor(x)).data
            out_perm = attn(nn.Tensor(x[:, perm, :])).data
        assert np.allclose(out[:, perm, :], out_perm, atol=1e-8)

    def test_attention_flops_scale_quadratically_in_tokens(self):
        attn = nn.MultiHeadSelfAttention(16, 4)
        small = attn.attention_flops(8)
        large = attn.attention_flops(32)
        assert large > small
        # the token-quadratic part grows 16x while projections grow 4x
        assert large < 16 * small
        assert large > 4 * small


class TestTransformerBlock:
    def test_forward_shape_preserved(self):
        block = nn.TransformerBlock(16, 4)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 6, 16)))
        assert block(x).shape == (2, 6, 16)

    def test_block_contains_three_layernorms(self):
        """The paper (Fig. 5) specifies three LayerNorms per block."""
        block = nn.TransformerBlock(16, 4)
        norms = [m for m in block._modules.values() if isinstance(m, nn.LayerNorm)]
        assert len(norms) == 3

    def test_block_gradient_flow(self):
        block = nn.TransformerBlock(8, 2)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4, 8)), requires_grad=True)
        block(x).sum().backward()
        assert np.isfinite(x.grad).all()
        assert all(p.grad is not None for p in block.parameters())

    def test_flops_positive_and_monotone_in_tokens(self):
        block = nn.TransformerBlock(16, 4)
        assert 0 < block.flops(4) < block.flops(16)

    def test_feedforward_hidden_multiplier(self):
        ff = nn.FeedForward(8, hidden_mult=4)
        first_linear = ff.net[0]
        assert first_linear.out_features == 32


class TestTransformerStack:
    def test_stack_depth_and_shape(self):
        stack = nn.TransformerStack(3, 16, 4)
        assert len(list(stack.blocks())) == 3
        x = nn.Tensor(np.zeros((1, 5, 16)))
        assert stack(x).shape == (1, 5, 16)

    def test_stack_flops_is_sum_of_blocks(self):
        stack = nn.TransformerStack(2, 16, 4)
        per_block = next(iter(stack.blocks())).flops(10)
        assert stack.flops(10) == pytest.approx(2 * per_block)

    def test_stack_parameters_grow_with_depth(self):
        shallow = nn.TransformerStack(1, 16, 4)
        deep = nn.TransformerStack(4, 16, 4)
        assert deep.num_parameters() == pytest.approx(4 * shallow.num_parameters())

    def test_state_dict_roundtrip_through_stack(self):
        a = nn.TransformerStack(2, 8, 2, rng=np.random.default_rng(0))
        b = nn.TransformerStack(2, 8, 2, rng=np.random.default_rng(5))
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(np.random.default_rng(1).normal(size=(1, 3, 8)))
        with nn.no_grad():
            assert np.allclose(a(x).data, b(x).data)


class TestOptimizers:
    def _quadratic_problem(self):
        rng = np.random.default_rng(0)
        target = rng.normal(size=(10,))
        param = nn.Parameter(np.zeros(10))
        return param, target

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (nn.SGD, {"lr": 0.1}),
        (nn.SGD, {"lr": 0.05, "momentum": 0.9}),
        (nn.Adam, {"lr": 0.05}),
        (nn.AdamW, {"lr": 0.05, "weight_decay": 0.0}),
    ])
    def test_optimizers_minimise_quadratic(self, optimizer_cls, kwargs):
        param, target = self._quadratic_problem()
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - nn.Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=0.05)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_adamw_decays_weights_without_gradient_signal(self):
        param = nn.Parameter(np.ones(4))
        optimizer = nn.AdamW([param], lr=0.1, weight_decay=0.5)
        # gradient of zero loss contribution: use a tiny constant gradient
        for _ in range(10):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()
            optimizer.step()
        assert np.all(param.data < 1.0)

    def test_weight_decay_in_plain_adam_shrinks_weights(self):
        """With a zero data gradient, L2-coupled Adam still pulls weights to zero."""
        param = nn.Parameter(np.ones(4))
        optimizer = nn.Adam([param], lr=0.05, weight_decay=1.0)
        for _ in range(20):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()
            optimizer.step()
        assert np.all(param.data < 0.5)

    def test_clip_grad_norm_limits_norm(self):
        param = nn.Parameter(np.zeros(3))
        param.grad = np.array([3.0, 4.0, 0.0])
        returned = nn.clip_grad_norm([param], max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_cosine_schedule_warmup_then_decay(self):
        param = nn.Parameter(np.zeros(1))
        optimizer = nn.Adam([param], lr=1.0)
        schedule = nn.CosineSchedule(optimizer, total_steps=10, warmup_steps=2, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))


class TestSerialization:
    def test_save_and_load_checkpoint(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 2))
        path = tmp_path / "ckpt.npz"
        nn.save_checkpoint(model, str(path), metadata={"epoch": 3})
        clone = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(77)),
                              nn.GELU(), nn.Linear(8, 2, rng=np.random.default_rng(88)))
        metadata = nn.load_checkpoint(clone, str(path))
        assert metadata == {"epoch": 3}
        x = nn.Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        with nn.no_grad():
            assert np.allclose(model(x).data, clone(x).data)

    def test_checkpoint_creates_directories(self, tmp_path):
        model = nn.Linear(2, 2)
        path = tmp_path / "nested" / "dir" / "model.npz"
        nn.save_checkpoint(model, str(path))
        assert path.exists()

    def test_state_dict_num_bytes(self):
        model = nn.Linear(10, 10)
        assert nn.state_dict_num_bytes(model.state_dict()) == 110 * 4
