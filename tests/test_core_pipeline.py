"""Tests for the end-to-end Easz pipeline (encoder, decoder, codec wrapper)."""

import numpy as np
import pytest

from repro.codecs import JpegCodec, PngCodec
from repro.core import EaszCodec, EaszConfig, EaszDecoder, EaszEncoder, proposed_mask
from repro.metrics import psnr


class TestEaszEncoder:
    def test_encode_produces_smaller_payload_than_plain_codec(self, tiny_config, gray_image):
        base = JpegCodec(quality=80)
        encoder = EaszEncoder(tiny_config, base, seed=0)
        package = encoder.encode(gray_image)
        plain = base.compress(gray_image)
        assert package.codec_payload.num_bytes < plain.num_bytes

    def test_package_fields(self, tiny_config, gray_image):
        encoder = EaszEncoder(tiny_config, JpegCodec(quality=80), seed=0)
        package = encoder.encode(gray_image)
        assert package.original_shape == gray_image.shape
        assert package.squeezed_shape[1] < gray_image.shape[1]
        assert package.config_summary["base_codec"].startswith("jpeg")
        assert package.num_bytes == package.codec_payload.num_bytes + len(package.mask_bytes)
        assert package.bpp() > 0

    def test_mask_strategy_validation(self, tiny_config):
        with pytest.raises(ValueError):
            EaszEncoder(tiny_config, mask_strategy="diagonal-ish")

    def test_generate_mask_respects_strategy(self, tiny_config):
        proposed_encoder = EaszEncoder(tiny_config, mask_strategy="proposed", seed=0)
        random_encoder = EaszEncoder(tiny_config, mask_strategy="random", seed=0)
        for encoder in (proposed_encoder, random_encoder):
            mask = encoder.generate_mask()
            assert mask.shape == (tiny_config.grid_size, tiny_config.grid_size)
            assert (mask == 0).sum() == tiny_config.erase_per_row * tiny_config.grid_size

    def test_zero_erase_keeps_everything(self, gray_image):
        config = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=0,
                            d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1)
        encoder = EaszEncoder(config, JpegCodec(quality=80), seed=0)
        mask = encoder.generate_mask()
        assert mask.all()

    def test_explicit_mask_is_used(self, tiny_config, gray_image):
        encoder = EaszEncoder(tiny_config, JpegCodec(quality=80), seed=0)
        mask = proposed_mask(tiny_config.grid_size, 1, seed=42)
        package = encoder.encode(gray_image, mask=mask)
        from repro.core import deserialize_mask
        assert np.array_equal(deserialize_mask(package.mask_bytes), mask)

    def test_complexity_split(self, tiny_config):
        encoder = EaszEncoder(tiny_config, JpegCodec(quality=80))
        squeeze, base = encoder.complexity((64, 96))
        assert squeeze.macs < base.macs
        assert squeeze.model_bytes == 0
        assert not squeeze.uses_gpu


class TestEaszDecoder:
    def test_decode_without_reconstruction_returns_filled_image(self, tiny_config, gray_image,
                                                                 untrained_tiny_model):
        base = JpegCodec(quality=85)
        encoder = EaszEncoder(tiny_config, base, seed=0)
        decoder = EaszDecoder(model=untrained_tiny_model, config=tiny_config, base_codec=base)
        package = encoder.encode(gray_image)
        filled = decoder.decode(package, reconstruct=False)
        assert filled.shape == gray_image.shape
        # zero-filled image has visibly lower fidelity than the reconstructed one
        reconstructed = decoder.decode(package)
        assert reconstructed.shape == gray_image.shape

    def test_neighbor_fill_mode(self, tiny_config, gray_image, untrained_tiny_model):
        base = JpegCodec(quality=85)
        encoder = EaszEncoder(tiny_config, base, seed=0)
        decoder = EaszDecoder(model=untrained_tiny_model, config=tiny_config,
                              base_codec=base, fill="neighbor")
        package = encoder.encode(gray_image)
        filled = decoder.decode(package, reconstruct=False)
        assert psnr(gray_image, filled) > 15.0

    def test_decoder_complexity(self, tiny_config, untrained_tiny_model):
        decoder = EaszDecoder(model=untrained_tiny_model, config=tiny_config,
                              base_codec=JpegCodec())
        decode, reconstruction = decoder.complexity((64, 96))
        assert reconstruction.uses_gpu
        assert reconstruction.model_bytes == untrained_tiny_model.model_size_bytes()
        assert reconstruction.macs > decode.macs


class TestEaszCodec:
    def test_roundtrip_shapes_gray_and_color(self, tiny_config, gray_image, rgb_image,
                                             trained_tiny_model):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=85),
                          model=trained_tiny_model, seed=0)
        for image in (gray_image, rgb_image):
            reconstruction, compressed = codec.roundtrip(image)
            assert reconstruction.shape == image.shape
            assert reconstruction.min() >= 0.0 and reconstruction.max() <= 1.0

    def test_name_combines_base_codec(self, tiny_config):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=60))
        assert codec.name == "jpeg-q60+easz"

    def test_bpp_lower_than_plain_base_codec(self, tiny_config, gray_image, trained_tiny_model):
        base = JpegCodec(quality=85)
        codec = EaszCodec(config=tiny_config, base_codec=base, model=trained_tiny_model, seed=0)
        _, compressed = codec.roundtrip(gray_image)
        _, plain = base.roundtrip(gray_image)
        assert compressed.bpp() < plain.bpp()

    def test_extra_bytes_accounts_for_mask(self, tiny_config, gray_image):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=85), seed=0)
        compressed = codec.compress(gray_image)
        assert compressed.extra_bytes > 0
        assert compressed.num_bytes == len(compressed.payload) + compressed.extra_bytes

    def test_reasonable_quality_with_trained_model(self, tiny_config, gray_image,
                                                   trained_tiny_model):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=85),
                          model=trained_tiny_model, seed=0)
        reconstruction, _ = codec.roundtrip(gray_image)
        assert psnr(gray_image, reconstruction) > 18.0

    def test_works_with_lossless_base_codec(self, tiny_config, gray_image, trained_tiny_model):
        """Easz 'functioning independently': squeezed image sent losslessly."""
        codec = EaszCodec(config=tiny_config, base_codec=PngCodec(),
                          model=trained_tiny_model, seed=0)
        reconstruction, compressed = codec.roundtrip(gray_image)
        assert reconstruction.shape == gray_image.shape
        assert compressed.bpp() > 0

    def test_higher_erase_ratio_saves_more_bits(self, gray_image, trained_tiny_model):
        base = JpegCodec(quality=85)
        low = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=1,
                         d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1)
        high = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=2,
                          d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1)
        bpp_low = EaszCodec(config=low, base_codec=base, model=trained_tiny_model,
                            seed=0).compress(gray_image).bpp()
        bpp_high = EaszCodec(config=high, base_codec=base, model=trained_tiny_model,
                             seed=0).compress(gray_image).bpp()
        assert bpp_high < bpp_low

    def test_random_mask_strategy_roundtrip(self, tiny_config, gray_image, trained_tiny_model):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=85),
                          model=trained_tiny_model, mask_strategy="random", seed=0)
        reconstruction, _ = codec.roundtrip(gray_image)
        assert reconstruction.shape == gray_image.shape

    def test_edge_complexity_has_no_model_and_no_gpu(self, tiny_config):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=75))
        profile = codec.encode_complexity((512, 768, 3))
        assert profile.model_bytes == 0
        assert not profile.uses_gpu

    def test_decode_complexity_includes_reconstruction_model(self, tiny_config):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=75))
        profile = codec.decode_complexity((512, 768, 3))
        assert profile.uses_gpu
        assert profile.model_bytes >= codec.model.model_size_bytes()

    def test_edge_encode_much_cheaper_than_neural_codec(self, tiny_config):
        from repro.codecs import MbtCodec
        easz = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=75))
        shape = (512, 768, 3)
        assert easz.encode_complexity(shape).macs < MbtCodec().encode_complexity(shape).macs / 100
