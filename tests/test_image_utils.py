"""Tests for repro.image helpers (colour spaces, resizing, padding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import image as im


class TestDtypeConversions:
    def test_to_float_from_uint8(self):
        arr = np.array([[0, 128, 255]], dtype=np.uint8)
        out = im.to_float(arr)
        assert out.dtype == np.float64
        assert out.min() == 0.0 and out.max() == 1.0

    def test_to_float_clips_floats(self):
        assert im.to_float(np.array([[-0.5, 1.5]])).tolist() == [[0.0, 1.0]]

    def test_to_uint8_rounds(self):
        assert im.to_uint8(np.array([[0.499 / 255, 0.501 / 255]])).tolist() == [[0, 1]]

    def test_roundtrip_uint8(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        assert np.array_equal(im.to_uint8(im.to_float(arr)), arr)


class TestColorSpaces:
    def test_is_color_detection(self, rgb_image, gray_image):
        assert im.is_color(rgb_image)
        assert not im.is_color(gray_image)

    def test_ensure_color_replicates_gray(self, gray_image):
        out = im.ensure_color(gray_image)
        assert out.shape == gray_image.shape + (3,)
        assert np.allclose(out[..., 0], out[..., 2])

    def test_ensure_gray_of_gray_is_identity(self, gray_image):
        assert im.ensure_gray(gray_image) is gray_image

    def test_ensure_color_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            im.ensure_color(np.zeros((2, 2, 4)))

    def test_rgb_gray_weights_sum_to_one(self):
        white = np.ones((2, 2, 3))
        assert np.allclose(im.rgb_to_gray(white), 1.0)

    def test_ycbcr_roundtrip(self, rgb_image):
        recovered = im.ycbcr_to_rgb(im.rgb_to_ycbcr(rgb_image))
        assert np.abs(recovered - rgb_image).max() < 1e-3

    def test_gray_image_has_neutral_chroma(self):
        gray_rgb = np.repeat(np.linspace(0, 1, 16).reshape(4, 4, 1), 3, axis=2)
        ycbcr = im.rgb_to_ycbcr(gray_rgb)
        assert np.allclose(ycbcr[..., 1], 0.5, atol=1e-6)
        assert np.allclose(ycbcr[..., 2], 0.5, atol=1e-6)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_ycbcr_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        rgb = rng.random((6, 7, 3))
        assert np.abs(im.ycbcr_to_rgb(im.rgb_to_ycbcr(rgb)) - rgb).max() < 1e-3


class TestPaddingAndCropping:
    def test_pad_to_multiple_shapes(self):
        padded, original = im.pad_to_multiple(np.zeros((10, 13)), 8)
        assert padded.shape == (16, 16)
        assert original == (10, 13)

    def test_pad_no_op_when_aligned(self):
        arr = np.zeros((16, 8))
        padded, original = im.pad_to_multiple(arr, 8)
        assert padded.shape == (16, 8)
        assert padded is arr

    def test_pad_color_image_keeps_channels(self):
        padded, _ = im.pad_to_multiple(np.zeros((5, 5, 3)), 4)
        assert padded.shape == (8, 8, 3)

    def test_crop_back_to_original(self):
        arr = np.arange(10 * 13, dtype=float).reshape(10, 13)
        padded, original = im.pad_to_multiple(arr, 8)
        assert np.array_equal(im.crop_to_shape(padded, original), arr)

    def test_edge_padding_replicates_border(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded, _ = im.pad_to_multiple(arr, 4)
        assert padded[0, 3] == 2.0
        assert padded[3, 0] == 3.0


class TestResampling:
    def test_bilinear_constant_image_unchanged(self):
        out = im.resize_bilinear(np.full((8, 8), 0.3), 16, 12)
        assert out.shape == (16, 12)
        assert np.allclose(out, 0.3)

    def test_bicubic_constant_image_unchanged(self):
        out = im.resize_bicubic(np.full((8, 8), 0.6), 17, 5)
        assert out.shape == (17, 5)
        assert np.allclose(out, 0.6, atol=1e-9)

    def test_bilinear_color_image_shape(self, rgb_image):
        out = im.resize_bilinear(rgb_image, 32, 40)
        assert out.shape == (32, 40, 3)

    def test_bicubic_preserves_range(self, gray_image):
        out = im.resize_bicubic(gray_image, 100, 120)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_bicubic_sharper_than_bilinear_on_edges(self):
        edge = np.zeros((32, 32))
        edge[:, 16:] = 1.0
        small = im.downsample_box(edge, 2)
        up_bi = im.resize_bilinear(small, 32, 32)
        up_bc = im.resize_bicubic(small, 32, 32)
        # bicubic should track the step edge at least as closely
        assert np.abs(up_bc - edge).mean() <= np.abs(up_bi - edge).mean() + 1e-6

    def test_downsample_box_averages(self):
        arr = np.arange(16, dtype=float).reshape(4, 4)
        out = im.downsample_box(arr, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_downsample_box_color(self, rgb_image):
        out = im.downsample_box(rgb_image, 2)
        assert out.shape == (rgb_image.shape[0] // 2, rgb_image.shape[1] // 2, 3)

    def test_image_num_pixels(self):
        assert im.image_num_pixels(np.zeros((4, 5, 3))) == 20
        assert im.image_num_pixels((7, 9)) == 63
