"""Tests for the BPG proxy, learned-codec proxies, PNG codec and the registry."""

import numpy as np
import pytest

from repro.codecs import (
    BpgCodec,
    ChengCodec,
    JpegCodec,
    LearnedTransformCodec,
    MbtCodec,
    PngCodec,
    available_codecs,
    create_codec,
    quality_grid,
)
from repro.image import to_uint8
from repro.metrics import psnr


@pytest.fixture(scope="module")
def small_gray():
    """A 48×64 grayscale image (kept small because BPG coding is per-block)."""
    from repro.datasets import SyntheticImageGenerator
    return SyntheticImageGenerator(48, 64, color=False).generate(3)


@pytest.fixture(scope="module")
def small_rgb():
    from repro.datasets import SyntheticImageGenerator
    return SyntheticImageGenerator(48, 64, color=True).generate(4)


class TestBpgCodec:
    def test_grayscale_roundtrip(self, small_gray):
        codec = BpgCodec(qp=30)
        reconstruction, compressed = codec.roundtrip(small_gray)
        assert reconstruction.shape == small_gray.shape
        assert psnr(small_gray, reconstruction) > 28.0
        assert 0 < compressed.bpp() < 8

    def test_color_roundtrip(self, small_rgb):
        codec = BpgCodec(qp=32)
        reconstruction, _ = codec.roundtrip(small_rgb)
        assert reconstruction.shape == small_rgb.shape
        assert psnr(small_rgb, reconstruction) > 24.0

    def test_qp_controls_rate(self, small_gray):
        fine = BpgCodec(qp=22).compress(small_gray)
        coarse = BpgCodec(qp=42).compress(small_gray)
        assert fine.num_bytes > coarse.num_bytes

    def test_qp_controls_distortion(self, small_gray):
        rec_fine, _ = BpgCodec(qp=22).roundtrip(small_gray)
        rec_coarse, _ = BpgCodec(qp=42).roundtrip(small_gray)
        assert psnr(small_gray, rec_fine) > psnr(small_gray, rec_coarse)

    def test_competitive_with_jpeg_under_a_byte_budget(self, small_gray):
        """Best PSNR achievable under a fixed byte budget: the HEVC-intra
        ingredients (prediction + adaptive arithmetic coding) should keep the
        proxy within a fraction of a dB of JPEG on natural content."""
        budget = JpegCodec(quality=75).compress(small_gray).num_bytes
        best_jpeg = max(
            psnr(small_gray, JpegCodec(quality=q).roundtrip(small_gray)[0])
            for q in (30, 50, 60, 75)
            if JpegCodec(quality=q).compress(small_gray).num_bytes <= budget
        )
        best_bpg = max(
            (psnr(small_gray, rec), comp.num_bytes)
            for qp in (26, 30, 34, 38, 42)
            for rec, comp in [BpgCodec(qp=qp).roundtrip(small_gray)]
            if comp.num_bytes <= budget
        )[0]
        assert best_bpg >= best_jpeg - 0.75

    def test_foreign_payload_rejected(self, small_gray):
        codec = BpgCodec()
        compressed = codec.compress(small_gray)
        compressed.payload = b"ZZZZ" + compressed.payload[4:]
        with pytest.raises(ValueError):
            codec.decompress(compressed)

    def test_complexity_profiles(self):
        codec = BpgCodec()
        encode = codec.encode_complexity((64, 64))
        decode = codec.decode_complexity((64, 64))
        assert encode.macs > decode.macs
        assert not encode.uses_gpu


class TestLearnedCodecs:
    @pytest.mark.parametrize("codec_cls", [MbtCodec, ChengCodec])
    def test_roundtrip(self, codec_cls, small_gray):
        codec = codec_cls(quality=4)
        reconstruction, compressed = codec.roundtrip(small_gray)
        assert reconstruction.shape == small_gray.shape
        assert psnr(small_gray, reconstruction) > 25.0
        assert 0 < compressed.bpp() < 8

    def test_color_roundtrip(self, small_rgb):
        reconstruction, _ = MbtCodec(quality=5).roundtrip(small_rgb)
        assert reconstruction.shape == small_rgb.shape

    def test_quality_index_controls_rate(self, small_gray):
        low = MbtCodec(quality=2).compress(small_gray)
        high = MbtCodec(quality=6).compress(small_gray)
        assert high.num_bytes > low.num_bytes

    def test_quality_index_controls_distortion(self, small_gray):
        rec_low, _ = MbtCodec(quality=2).roundtrip(small_gray)
        rec_high, _ = MbtCodec(quality=6).roundtrip(small_gray)
        assert psnr(small_gray, rec_high) > psnr(small_gray, rec_low)

    def test_quality_clamped_to_valid_range(self):
        assert MbtCodec(quality=99).quality == 8
        assert MbtCodec(quality=-3).quality == 1

    def test_entropy_model_validation(self):
        with pytest.raises(ValueError):
            LearnedTransformCodec(entropy_model="nonsense")

    @pytest.mark.parametrize("entropy_model", ["factorized", "hyperprior", "context"])
    def test_all_entropy_models_roundtrip(self, entropy_model, small_gray):
        codec = LearnedTransformCodec(quality=4, entropy_model=entropy_model,
                                      name=f"lt-{entropy_model}")
        reconstruction, compressed = codec.roundtrip(small_gray)
        assert reconstruction.shape == small_gray.shape
        assert psnr(small_gray, reconstruction) > 25.0
        assert compressed.num_bytes > 0

    def test_neural_flag_and_complexity(self):
        codec = ChengCodec(quality=4)
        assert codec.is_neural
        profile = codec.encode_complexity((512, 768, 3))
        assert profile.uses_gpu
        assert profile.model_bytes > 50 * 2 ** 20
        assert profile.macs > 1e11

    def test_mbt_cheaper_than_cheng_bitstream_not_required(self):
        """Cheng has the larger published model; MBT the lighter one."""
        assert MbtCodec().model_bytes < ChengCodec().model_bytes

    def test_train_steps_reduces_rd_objective(self, small_gray):
        from repro.datasets import extract_patches
        codec = MbtCodec(quality=4)
        patches = extract_patches(small_gray, 8)[:64]
        losses = codec.train_steps(patches, steps=15, lr=5e-4)
        assert losses[-1] < losses[0]

    def test_roundtrip_still_works_after_training(self, small_gray):
        from repro.datasets import extract_patches
        codec = MbtCodec(quality=4)
        codec.train_steps(extract_patches(small_gray, 8)[:32], steps=5)
        reconstruction, _ = codec.roundtrip(small_gray)
        assert reconstruction.shape == small_gray.shape


class TestPngCodec:
    def test_lossless_grayscale(self, small_gray):
        codec = PngCodec()
        reconstruction, compressed = codec.roundtrip(small_gray)
        assert np.array_equal(to_uint8(reconstruction), to_uint8(small_gray))
        assert compressed.num_bytes > 0

    def test_lossless_color(self, small_rgb):
        reconstruction, _ = PngCodec().roundtrip(small_rgb)
        assert np.array_equal(to_uint8(reconstruction), to_uint8(small_rgb))

    def test_compresses_smooth_content(self):
        image = np.tile(np.linspace(0, 1, 64), (64, 1))
        compressed = PngCodec().compress(image)
        assert compressed.num_bytes < 64 * 64  # < 1 byte/pixel on smooth ramps

    def test_foreign_payload_rejected(self, small_gray):
        codec = PngCodec()
        compressed = codec.compress(small_gray)
        compressed.payload = b"ABCD" + compressed.payload[4:]
        with pytest.raises(ValueError):
            codec.decompress(compressed)


class TestRegistry:
    def test_available_codecs(self):
        names = available_codecs()
        assert {"jpeg", "bpg", "mbt", "cheng", "png"} <= set(names)

    def test_create_by_name_with_quality(self):
        assert isinstance(create_codec("jpeg", 50), JpegCodec)
        assert create_codec("jpeg", 50).quality == 50
        assert isinstance(create_codec("bpg", 30), BpgCodec)
        assert create_codec("bpg", 30).qp == 30
        assert isinstance(create_codec("mbt", 3), MbtCodec)
        assert isinstance(create_codec("cheng", 3), ChengCodec)

    def test_create_default_quality(self):
        assert isinstance(create_codec("png"), PngCodec)

    def test_unknown_codec_rejected(self):
        with pytest.raises(KeyError):
            create_codec("h266")

    def test_quality_grid_available_for_sweepable_codecs(self):
        for name in ("jpeg", "bpg", "mbt", "cheng"):
            grid = quality_grid(name)
            assert len(grid) >= 5

    def test_quality_grid_unknown_codec(self):
        with pytest.raises(KeyError):
            quality_grid("png2")
