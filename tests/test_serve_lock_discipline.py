"""Regression tests for the lock-discipline fixes in the serving stack.

Each test pins a concrete bug found by the ``# guarded-by`` audit:
torn ``ResultCache`` stats snapshots, queue-depth telemetry sampled
outside the routing lock, and stale ``_inflight`` state across a
stop()/start() cycle.  The module name starts with ``test_serve`` on
purpose — the autouse lock-order fixture in conftest records every lock
acquisition here too.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import EaszConfig, EaszEncoder, EaszReconstructor
from repro.serve import BatchPolicy, ResultCache, ShardedCompressionServer


# --------------------------------------------------------------------------- #
# ResultCache: stats() and hit_rate must be internally consistent snapshots
# --------------------------------------------------------------------------- #
class TestResultCacheConsistency:
    def test_counters_match_single_threaded(self):
        cache = ResultCache(capacity=4)
        image = np.zeros((2, 2), dtype=np.float64)
        assert cache.lookup(b"a") is None
        cache.put(b"a", image)
        assert cache.lookup(b"a") is not None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_stats_snapshot_never_torn_under_concurrency(self):
        """hit_rate in a snapshot must equal hits/(hits+misses) of that
        same snapshot — the pre-fix stats() recomputed the rate outside
        the span that read the counters, so a concurrent lookup could
        land in between."""
        cache = ResultCache(capacity=8)
        image = np.zeros((2, 2), dtype=np.float64)
        cache.put(b"hot", image)
        stop = threading.Event()

        def hammer():
            toggle = 0
            while not stop.is_set():
                cache.lookup(b"hot" if toggle else b"cold")
                toggle ^= 1

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            previous_total = 0
            for _ in range(300):
                stats = cache.stats()
                total = stats["hits"] + stats["misses"]
                expected = stats["hits"] / total if total else 0.0
                assert stats["hit_rate"] == pytest.approx(expected, abs=0.0)
                assert total >= previous_total  # counters only move forward
                previous_total = total
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=5.0)
        assert previous_total > 0

    def test_disabled_cache_is_all_misses(self):
        cache = ResultCache(capacity=0)
        assert cache.lookup(b"x") is None
        cache.put(b"x", np.zeros((1, 1)))
        assert cache.lookup(b"x") is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert stats["hit_rate"] == 0.0


# --------------------------------------------------------------------------- #
# ShardedCompressionServer: routing-state resets and locked telemetry
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serve_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def serve_model(serve_config):
    model = EaszReconstructor(serve_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def packages(serve_config):
    rng = np.random.default_rng(3)
    encoder = EaszEncoder(serve_config, seed=3)
    mask = encoder.generate_mask()
    images = [rng.random((48, 64, 3)) for _ in range(3)]
    return encoder.encode_batch(images, mask=mask)


class TestShardedRoutingState:
    def test_lifecycle_resets_inflight_and_records_queue_depth(
            self, serve_model, serve_config, packages):
        server = ShardedCompressionServer(
            model=serve_model, config=serve_config, num_shards=2,
            base_codec=JpegCodec(quality=75),
            batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
        server.start()
        try:
            pendings = [server.submit(package) for package in packages]
            for pending in pendings:
                pending.result(timeout=300.0)
            # queue depth is sampled inside the routing-lock span that
            # inserted the entry, so a completed submit always registers
            merged = server.aggregate_snapshot()
            assert merged["queue_depth_peak"] >= 1
            assert merged["inflight"] == [0] * server.num_shards

            watchdog = server.watchdog_snapshot()
            assert watchdog["enabled"] is False
            assert watchdog["restarts_total"] == 0
            assert len(watchdog["backoff_s"]) == server.num_shards
            assert len(watchdog["heartbeat_age_s"]) == server.num_shards
        finally:
            server.stop(timeout=60.0)
        assert server._inflight == [0] * server.num_shards

        # restart: the routing state must come back clean, not carry the
        # old pool's counters
        server.start()
        try:
            assert server._inflight == [0] * server.num_shards
            response = server.submit(packages[0]).result(timeout=300.0)
            assert response.image.shape == packages[0].original_shape
        finally:
            server.stop(timeout=60.0)

    def test_submit_after_stop_is_rejected(self, serve_model, serve_config,
                                           packages):
        from repro.serve import QueueClosedError

        server = ShardedCompressionServer(
            model=serve_model, config=serve_config, num_shards=1,
            base_codec=JpegCodec(quality=75),
            batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
        server.start()
        server.stop(timeout=60.0)
        with pytest.raises(QueueClosedError):
            server.submit(packages[0])
