"""Tests for the Easz reconstruction transformer, training loop and config."""

import numpy as np
import pytest

from repro.core import (
    EaszConfig,
    EaszReconstructor,
    EaszTrainer,
    proposed_mask,
    reconstruct_image,
    reconstruction_loss,
)
from repro.datasets import CifarLikeDataset
from repro.metrics import psnr
from repro import nn


class TestEaszConfig:
    def test_derived_quantities(self):
        config = EaszConfig(patch_size=32, subpatch_size=4, erase_per_row=2)
        assert config.grid_size == 8
        assert config.tokens_per_patch == 64
        assert config.token_dim == 16
        assert config.erase_ratio == pytest.approx(0.25)

    def test_color_token_dim(self):
        config = EaszConfig(patch_size=16, subpatch_size=4, channels=3)
        assert config.token_dim == 48

    def test_invalid_patch_subpatch_combo(self):
        with pytest.raises(ValueError):
            EaszConfig(patch_size=30, subpatch_size=4)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            EaszConfig(d_model=30, num_heads=4)

    def test_invalid_erase_per_row(self):
        with pytest.raises(ValueError):
            EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=4)

    def test_paper_preset_model_size(self):
        config = EaszConfig.paper()
        model = EaszReconstructor(config)
        size_mb = model.model_size_bytes() / 2 ** 20
        # paper reports an 8.7 MB reconstruction model; the preset should land
        # in the single-digit-MB regime
        assert 2.0 < size_mb < 12.0

    def test_small_preset_is_cheap(self):
        config = EaszConfig.small()
        assert EaszReconstructor(config).num_parameters() < 200_000

    def test_with_erase_ratio(self):
        config = EaszConfig(patch_size=32, subpatch_size=4)
        adjusted = config.with_erase_ratio(0.5)
        assert adjusted.erase_per_row == 4
        assert adjusted.patch_size == config.patch_size

    def test_with_erase_ratio_clamped(self):
        config = EaszConfig(patch_size=16, subpatch_size=4)
        assert config.with_erase_ratio(0.99).erase_per_row == 3
        assert config.with_erase_ratio(0.0).erase_per_row == 0


class TestEaszReconstructor:
    def test_forward_output_shape(self, tiny_config):
        model = EaszReconstructor(tiny_config)
        tokens = np.random.default_rng(0).random(
            (3, tiny_config.tokens_per_patch, tiny_config.token_dim))
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=0)
        out = model(tokens, mask)
        assert out.shape == tokens.shape
        assert np.all(out.data >= 0.0) and np.all(out.data <= 1.0)

    def test_forward_rejects_wrong_mask_size(self, tiny_config):
        model = EaszReconstructor(tiny_config)
        tokens = np.zeros((1, tiny_config.tokens_per_patch, tiny_config.token_dim))
        with pytest.raises(ValueError):
            model(tokens, np.ones((3, 3)))

    def test_reconstruct_tokens_keeps_original_values(self, tiny_config):
        model = EaszReconstructor(tiny_config)
        rng = np.random.default_rng(1)
        tokens = rng.random((2, tiny_config.tokens_per_patch, tiny_config.token_dim))
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=1)
        out = model.reconstruct_tokens(tokens, mask, keep_original=True)
        kept = np.asarray(mask, dtype=bool).reshape(-1)
        assert np.allclose(out[:, kept, :], tokens[:, kept, :])

    def test_reconstruct_tokens_without_keep_overwrites_everything(self, tiny_config):
        model = EaszReconstructor(tiny_config)
        tokens = np.random.default_rng(2).random(
            (1, tiny_config.tokens_per_patch, tiny_config.token_dim))
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=1)
        out = model.reconstruct_tokens(tokens, mask, keep_original=False)
        kept = np.asarray(mask, dtype=bool).reshape(-1)
        assert not np.allclose(out[:, kept, :], tokens[:, kept, :])

    def test_prediction_ignores_erased_input_values(self, tiny_config):
        """The encoder only sees kept tokens, so the values stored at erased
        positions must not influence the output."""
        model = EaszReconstructor(tiny_config)
        rng = np.random.default_rng(3)
        tokens = rng.random((1, tiny_config.tokens_per_patch, tiny_config.token_dim))
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=2)
        erased = ~np.asarray(mask, dtype=bool).reshape(-1)
        altered = tokens.copy()
        altered[:, erased, :] = 0.999
        with nn.no_grad():
            out_a = model(tokens, mask).data
            out_b = model(altered, mask).data
        assert np.allclose(out_a, out_b)

    def test_same_model_supports_multiple_erase_ratios(self, tiny_config):
        """The agility claim: one model, any erase ratio."""
        model = EaszReconstructor(tiny_config)
        tokens = np.random.default_rng(0).random(
            (1, tiny_config.tokens_per_patch, tiny_config.token_dim))
        for erase_per_row in (1, 2):
            mask = proposed_mask(tiny_config.grid_size, erase_per_row, seed=0)
            out = model.reconstruct_tokens(tokens, mask)
            assert out.shape == tokens.shape

    def test_reconstruction_flops_scale_with_image_area(self, tiny_config):
        model = EaszReconstructor(tiny_config)
        small = model.reconstruction_flops((32, 32))
        large = model.reconstruction_flops((64, 64))
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_reconstruct_image_gray_and_color(self, tiny_config, gray_image, rgb_image):
        model = EaszReconstructor(tiny_config)
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=0)
        out_gray = reconstruct_image(model, gray_image, mask)
        out_rgb = reconstruct_image(model, rgb_image, mask)
        assert out_gray.shape == gray_image.shape
        assert out_rgb.shape == rgb_image.shape

    def test_model_checkpoint_roundtrip(self, tiny_config, tmp_path):
        model = EaszReconstructor(tiny_config)
        path = str(tmp_path / "model.npz")
        nn.save_checkpoint(model, path)
        clone = EaszReconstructor(EaszConfig(**{**tiny_config.__dict__, "seed": 99}))
        nn.load_checkpoint(clone, path)
        tokens = np.random.default_rng(0).random(
            (1, tiny_config.tokens_per_patch, tiny_config.token_dim))
        mask = proposed_mask(tiny_config.grid_size, 1, seed=0)
        assert np.allclose(model.reconstruct_tokens(tokens, mask),
                           clone.reconstruct_tokens(tokens, mask))


class TestTraining:
    def test_loss_decreases_during_pretraining(self, tiny_config):
        dataset = CifarLikeDataset(num_images=64, size=tiny_config.patch_size, seed=1)
        trainer = EaszTrainer(config=tiny_config, use_perceptual_loss=False)
        result = trainer.pretrain(dataset, steps=40, batch_size=8)
        assert result.steps == 40
        first_phase = np.mean(result.losses[:5])
        last_phase = np.mean(result.losses[-5:])
        assert last_phase < first_phase

    def test_trained_model_beats_untrained(self, tiny_config, trained_tiny_model, gray_image):
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=0)
        untrained = EaszReconstructor(tiny_config)
        rec_trained = reconstruct_image(trained_tiny_model, gray_image, mask)
        rec_untrained = reconstruct_image(untrained, gray_image, mask)
        assert psnr(gray_image, rec_trained) > psnr(gray_image, rec_untrained)

    def test_finetune_continues_to_improve_or_hold(self, tiny_config):
        dataset = CifarLikeDataset(num_images=64, size=tiny_config.patch_size, seed=2)
        trainer = EaszTrainer(config=tiny_config, use_perceptual_loss=False)
        pre = trainer.pretrain(dataset, steps=30, batch_size=8)
        fine = trainer.finetune(dataset, steps=10, batch_size=8)
        assert np.mean(fine.losses) <= np.mean(pre.losses[:10])

    def test_wrong_patch_size_rejected(self, tiny_config):
        trainer = EaszTrainer(config=tiny_config, use_perceptual_loss=False)
        bad = [np.zeros((2, tiny_config.patch_size * 2, tiny_config.patch_size * 2))]
        with pytest.raises(ValueError):
            trainer.train_on_batches(bad)

    def test_perceptual_loss_path_runs(self, tiny_config):
        dataset = CifarLikeDataset(num_images=16, size=tiny_config.patch_size, seed=3)
        config = EaszConfig(**{**tiny_config.__dict__, "loss_lambda": 0.3})
        trainer = EaszTrainer(config=config, use_perceptual_loss=True)
        result = trainer.pretrain(dataset, steps=3, batch_size=4)
        assert len(result.perceptual_losses) == 3
        assert all(np.isfinite(result.losses))
        assert any(p > 0 for p in result.perceptual_losses)

    def test_reconstruction_loss_components(self):
        prediction = np.full((2, 4, 4), 0.6)
        target = np.full((2, 4, 4), 0.5)
        total, l1, perceptual = reconstruction_loss(prediction, target, patch_size=4,
                                                    loss_lambda=0.0)
        assert float(l1.data) == pytest.approx(0.1)
        assert float(total.data) == pytest.approx(0.1)
        assert float(perceptual.data) == 0.0

    def test_reconstruction_loss_mask_weighting(self):
        prediction = np.zeros((1, 4, 4))
        target = np.zeros((1, 4, 4))
        target[:, 0, :] = 1.0  # error only at token 0
        mask_err_on_erased = np.array([[0, 1], [1, 1]])
        mask_err_on_kept = np.array([[1, 1], [1, 0]])
        loss_erased, _, _ = reconstruction_loss(prediction, target, 4, loss_lambda=0.0,
                                                mask=mask_err_on_erased)
        loss_kept, _, _ = reconstruction_loss(prediction, target, 4, loss_lambda=0.0,
                                              mask=mask_err_on_kept)
        assert float(loss_erased.data) > float(loss_kept.data)

    def test_evaluate_mse_on_erased_positions(self, tiny_config, trained_tiny_model):
        trainer = EaszTrainer(model=trained_tiny_model, config=tiny_config,
                              use_perceptual_loss=False)
        dataset = CifarLikeDataset(num_images=8, size=tiny_config.patch_size, seed=4)
        patches = np.stack([dataset[i] for i in range(8)])
        mask = proposed_mask(tiny_config.grid_size, 1, seed=0)
        value = trainer.evaluate_mse(patches, mask)
        assert 0.0 < value < 0.5

    def test_evaluate_mse_zero_when_nothing_erased(self, tiny_config, trained_tiny_model):
        trainer = EaszTrainer(model=trained_tiny_model, config=tiny_config,
                              use_perceptual_loss=False)
        patches = np.zeros((2, tiny_config.patch_size, tiny_config.patch_size))
        full_mask = np.ones((tiny_config.grid_size, tiny_config.grid_size), dtype=np.uint8)
        assert trainer.evaluate_mse(patches, full_mask) == 0.0

    def test_training_result_properties_empty(self):
        from repro.core.training import TrainingResult
        result = TrainingResult()
        assert np.isnan(result.final_loss)
        assert np.isnan(result.initial_loss)
