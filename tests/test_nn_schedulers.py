"""Tests for learning-rate schedules, early stopping and weight averaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture()
def optimizer():
    layer = nn.Linear(4, 4, rng=np.random.default_rng(0))
    return nn.Adam(layer.parameters(), lr=0.1)


class TestBasicSchedules:
    def test_constant_lr_never_changes(self, optimizer):
        schedule = nn.ConstantLR(optimizer)
        values = [schedule.step() for _ in range(5)]
        assert all(v == pytest.approx(0.1) for v in values)

    def test_step_lr_decays_at_boundaries(self, optimizer):
        schedule = nn.StepLR(optimizer, step_size=3, gamma=0.5)
        values = [schedule.step() for _ in range(7)]
        assert values[0] == pytest.approx(0.1)
        assert values[2] == pytest.approx(0.05)   # step 3 crosses the boundary
        assert values[5] == pytest.approx(0.025)  # step 6 crosses the next one

    def test_step_lr_rejects_non_positive_step_size(self, optimizer):
        with pytest.raises(ValueError):
            nn.StepLR(optimizer, step_size=0)

    def test_exponential_lr_is_geometric(self, optimizer):
        schedule = nn.ExponentialLR(optimizer, gamma=0.9)
        values = [schedule.step() for _ in range(4)]
        ratios = [b / a for a, b in zip(values, values[1:])]
        assert all(r == pytest.approx(0.9) for r in ratios)

    def test_warmup_cosine_warms_up_then_anneals(self, optimizer):
        schedule = nn.WarmupCosineLR(optimizer, total_steps=10, warmup_steps=3, min_lr=0.01)
        values = [schedule.step() for _ in range(10)]
        assert values[0] < values[1] < values[2]            # warm-up is increasing
        assert values[2] == pytest.approx(0.1)               # reaches base lr
        assert all(a >= b - 1e-12 for a, b in zip(values[2:], values[3:]))  # then decays
        assert values[-1] == pytest.approx(0.01, abs=1e-9)   # ends at min_lr

    def test_schedule_updates_optimizer_in_place(self, optimizer):
        schedule = nn.ExponentialLR(optimizer, gamma=0.5)
        schedule.step()
        assert optimizer.lr == pytest.approx(0.05)
        assert schedule.current_lr == optimizer.lr


class TestReduceLROnPlateau:
    def test_reduces_after_patience_exhausted(self, optimizer):
        plateau = nn.ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
        plateau.step(1.0)
        for _ in range(3):
            plateau.step(1.0)
        assert optimizer.lr == pytest.approx(0.05)
        assert plateau.num_reductions == 1

    def test_improvement_resets_patience(self, optimizer):
        plateau = nn.ReduceLROnPlateau(optimizer, factor=0.5, patience=2, threshold=1e-6)
        losses = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
        for loss in losses:
            plateau.step(loss)
        assert optimizer.lr == pytest.approx(0.1)

    def test_respects_min_lr(self, optimizer):
        plateau = nn.ReduceLROnPlateau(optimizer, factor=0.1, patience=0, min_lr=0.05)
        for _ in range(10):
            plateau.step(1.0)
        assert optimizer.lr == pytest.approx(0.05)

    def test_rejects_bad_factor(self, optimizer):
        with pytest.raises(ValueError):
            nn.ReduceLROnPlateau(optimizer, factor=1.5)


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = nn.EarlyStopping(patience=3)
        assert not stopper.step(1.0)
        assert not stopper.step(1.0)
        assert not stopper.step(1.0)
        assert stopper.step(1.0)
        assert stopper.should_stop

    def test_improvement_keeps_training(self):
        stopper = nn.EarlyStopping(patience=2)
        for loss in (1.0, 0.9, 0.8, 0.7):
            assert not stopper.step(loss)


class TestExponentialMovingAverage:
    def test_shadow_tracks_parameters(self):
        layer = nn.Linear(3, 3, rng=np.random.default_rng(1))
        ema = nn.ExponentialMovingAverage(layer.parameters(), decay=0.5)
        original = [np.array(p.data) for p in layer.parameters()]
        for parameter in layer.parameters():
            parameter.data = parameter.data + 1.0
        ema.update()
        for shadow, before in zip(ema.shadow, original):
            assert np.allclose(shadow, before + 0.5)

    def test_apply_and_restore_are_inverse(self):
        layer = nn.Linear(3, 3, rng=np.random.default_rng(2))
        parameters = list(layer.parameters())
        ema = nn.ExponentialMovingAverage(parameters, decay=0.9)
        live = [np.array(p.data) for p in parameters]
        for parameter in parameters:
            parameter.data = parameter.data + 1.0
        ema.update()
        ema.apply_to()
        applied = [np.array(p.data) for p in parameters]
        ema.restore()
        restored = [np.array(p.data) for p in parameters]
        for before, mid, after in zip(live, applied, restored):
            assert not np.allclose(mid, after)
            assert np.allclose(after, before + 1.0)

    def test_restore_without_apply_raises(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(3))
        ema = nn.ExponentialMovingAverage(layer.parameters())
        with pytest.raises(RuntimeError):
            ema.restore()

    def test_invalid_decay_and_empty_parameters_rejected(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            nn.ExponentialMovingAverage(layer.parameters(), decay=1.5)
        with pytest.raises(ValueError):
            nn.ExponentialMovingAverage([], decay=0.9)

    def test_ema_evaluation_matches_training_average(self):
        """Averaged weights land between the oldest and newest live weights."""
        layer = nn.Linear(2, 2, rng=np.random.default_rng(5))
        parameter = list(layer.parameters())[0]
        ema = nn.ExponentialMovingAverage([parameter], decay=0.5)
        start = np.array(parameter.data)
        parameter.data = start + 4.0
        ema.update()
        assert np.all(ema.shadow[0] > start)
        assert np.all(ema.shadow[0] < parameter.data)
