"""Tests for full-reference and no-reference quality metrics."""

import numpy as np
import pytest
from scipy.ndimage import gaussian_filter

from repro.codecs import JpegCodec
from repro.metrics import (
    NaturalnessModel,
    bits_per_pixel,
    brisque,
    file_saving_ratio,
    fit_aggd,
    fit_ggd,
    generate_pristine_image,
    lpips,
    mae,
    ms_ssim,
    mscn_coefficients,
    mse,
    multiscale_nss_features,
    niqe,
    nss_features,
    pi,
    psnr,
    ssim,
    tres,
)
from repro.metrics.lpips import PerceptualLoss
from repro import nn


@pytest.fixture(scope="module")
def pristine():
    rng = np.random.default_rng(42)
    return generate_pristine_image(rng, 128)


@pytest.fixture(scope="module")
def distorted(pristine):
    codec = JpegCodec(quality=8)
    reconstruction, _ = codec.roundtrip(pristine)
    return reconstruction


class TestFullReference:
    def test_mse_zero_for_identical(self, pristine):
        assert mse(pristine, pristine) == 0.0

    def test_mse_shape_mismatch(self, pristine):
        with pytest.raises(ValueError):
            mse(pristine, pristine[:-2])

    def test_mae_and_rmse_relations(self, pristine, distorted):
        assert mae(pristine, distorted) > 0
        assert mse(pristine, distorted) > 0

    def test_psnr_infinite_for_identical(self, pristine):
        assert psnr(pristine, pristine) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)

    def test_psnr_decreases_with_noise_level(self, pristine):
        rng = np.random.default_rng(0)
        light = np.clip(pristine + 0.02 * rng.standard_normal(pristine.shape), 0, 1)
        heavy = np.clip(pristine + 0.2 * rng.standard_normal(pristine.shape), 0, 1)
        assert psnr(pristine, light) > psnr(pristine, heavy)

    def test_ssim_bounds_and_identity(self, pristine, distorted):
        assert ssim(pristine, pristine) == pytest.approx(1.0)
        value = ssim(pristine, distorted)
        assert -1.0 <= value < 1.0

    def test_ssim_penalises_blur(self, pristine):
        blurred = gaussian_filter(pristine, 2.0)
        assert ssim(pristine, blurred) < ssim(pristine, gaussian_filter(pristine, 0.5))

    def test_ms_ssim_identity_and_ordering(self, pristine):
        assert ms_ssim(pristine, pristine) == pytest.approx(1.0)
        mild = gaussian_filter(pristine, 0.8)
        severe = gaussian_filter(pristine, 3.0)
        assert ms_ssim(pristine, mild) > ms_ssim(pristine, severe)

    def test_ms_ssim_works_on_small_images(self):
        rng = np.random.default_rng(0)
        a = rng.random((24, 24))
        b = np.clip(a + 0.05 * rng.standard_normal((24, 24)), 0, 1)
        assert 0.0 < ms_ssim(a, b) <= 1.0

    def test_metrics_accept_rgb(self, pristine):
        rgb = np.repeat(pristine[..., None], 3, axis=2)
        assert ssim(rgb, rgb) == pytest.approx(1.0)
        assert psnr(rgb, rgb) == float("inf")


class TestLpips:
    def test_identity_is_zero(self, pristine):
        assert lpips(pristine, pristine) == pytest.approx(0.0, abs=1e-12)

    def test_increases_with_distortion_strength(self, pristine):
        rng = np.random.default_rng(1)
        light = np.clip(pristine + 0.02 * rng.standard_normal(pristine.shape), 0, 1)
        heavy = np.clip(pristine + 0.2 * rng.standard_normal(pristine.shape), 0, 1)
        assert lpips(pristine, heavy) > lpips(pristine, light)

    def test_shape_mismatch_rejected(self, pristine):
        with pytest.raises(ValueError):
            lpips(pristine, pristine[:-1])

    def test_perceptual_loss_is_differentiable(self):
        loss_fn = PerceptualLoss(num_scales=2)
        rng = np.random.default_rng(0)
        prediction = nn.Tensor(rng.random((2, 16, 16)), requires_grad=True)
        target = nn.Tensor(rng.random((2, 16, 16)))
        loss = loss_fn(prediction, target)
        loss.backward()
        assert prediction.grad is not None
        assert np.isfinite(prediction.grad).all()

    def test_perceptual_loss_zero_for_identical_batches(self):
        loss_fn = PerceptualLoss(num_scales=2)
        batch = np.random.default_rng(0).random((2, 16, 16))
        assert float(loss_fn(batch, batch).data) == pytest.approx(0.0, abs=1e-12)


class TestNssFeatures:
    def test_mscn_is_roughly_zero_mean_unit_scale(self, pristine):
        coefficients = mscn_coefficients(pristine)
        assert abs(coefficients.mean()) < 0.2
        assert 0.2 < coefficients.std() < 2.0

    def test_ggd_fit_recovers_gaussian_shape(self):
        rng = np.random.default_rng(0)
        alpha, sigma = fit_ggd(rng.normal(0, 0.5, size=100_000))
        assert alpha == pytest.approx(2.0, abs=0.15)
        assert sigma == pytest.approx(0.5, abs=0.02)

    def test_ggd_fit_recovers_laplacian_shape(self):
        rng = np.random.default_rng(0)
        alpha, _ = fit_ggd(rng.laplace(0, 0.5, size=100_000))
        assert alpha == pytest.approx(1.0, abs=0.15)

    def test_ggd_degenerate_input(self):
        alpha, sigma = fit_ggd(np.zeros(100))
        assert alpha == 10.0 and sigma >= 0.0

    def test_aggd_fit_detects_asymmetry(self):
        rng = np.random.default_rng(0)
        symmetric = rng.normal(0, 1, 50_000)
        skewed = np.where(symmetric > 0, symmetric * 2.0, symmetric)
        _, _, left_sym, right_sym = fit_aggd(symmetric)
        _, _, left_skew, right_skew = fit_aggd(skewed)
        assert abs(left_sym - right_sym) < 0.05
        assert right_skew > left_skew * 1.5

    def test_feature_vector_lengths(self, pristine):
        assert nss_features(pristine).shape == (18,)
        assert multiscale_nss_features(pristine, scales=2).shape == (36,)

    def test_features_are_finite(self, pristine, distorted):
        assert np.isfinite(nss_features(pristine)).all()
        assert np.isfinite(nss_features(distorted)).all()


class TestNoReferenceMetrics:
    def test_brisque_orders_by_distortion(self, pristine, distorted):
        assert brisque(distorted) > brisque(pristine)

    def test_brisque_in_range(self, pristine, distorted):
        for image in (pristine, distorted):
            assert 0.0 <= brisque(image) <= 100.0

    def test_niqe_orders_by_distortion(self, pristine, distorted):
        assert niqe(distorted) > niqe(pristine)

    def test_pi_combines_and_orders(self, pristine, distorted):
        assert pi(distorted) > pi(pristine)
        assert pi(pristine) > 0

    def test_tres_higher_is_better(self, pristine, distorted):
        assert tres(pristine) > tres(distorted)
        assert 0.0 <= tres(distorted) <= 100.0

    def test_blur_degrades_all_metrics(self, pristine):
        blurred = gaussian_filter(pristine, 2.5)
        assert brisque(blurred) > brisque(pristine)
        assert tres(blurred) < tres(pristine)

    def test_noise_degrades_brisque(self, pristine):
        rng = np.random.default_rng(0)
        noisy = np.clip(pristine + 0.15 * rng.standard_normal(pristine.shape), 0, 1)
        assert brisque(noisy) > brisque(pristine)

    def test_metric_monotone_in_jpeg_quality(self, pristine):
        scores = [brisque(JpegCodec(quality=q).roundtrip(pristine)[0]) for q in (10, 50, 90)]
        assert scores[0] > scores[2]

    def test_custom_naturalness_model(self, pristine):
        rng = np.random.default_rng(5)
        model = NaturalnessModel().fit([generate_pristine_image(rng, 96) for _ in range(6)])
        assert model.is_fit
        assert model.distance(pristine) >= 0.0

    def test_unfit_model_raises(self, pristine):
        with pytest.raises(RuntimeError):
            NaturalnessModel().distance(pristine)


class TestRateAccounting:
    def test_bits_per_pixel(self):
        assert bits_per_pixel(1000, (100, 100)) == pytest.approx(0.8)
        assert bits_per_pixel(1000, np.zeros((100, 100, 3))) == pytest.approx(0.8)

    def test_file_saving_ratio(self):
        assert file_saving_ratio(1000, 900) == pytest.approx(0.1)
        assert file_saving_ratio(1000, 1100) == pytest.approx(-0.1)

    def test_file_saving_ratio_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            file_saving_ratio(0, 10)
