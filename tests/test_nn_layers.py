"""Tests for repro.nn layers, functional ops and initialisers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import init


class TestFunctional:
    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(4, 16))
        out = F.layer_norm(nn.Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine_applied(self):
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        weight = nn.Tensor(np.full(4, 2.0))
        bias = nn.Tensor(np.full(4, 1.0))
        plain = F.layer_norm(x).data
        affine = F.layer_norm(x, weight, bias).data
        assert np.allclose(affine, plain * 2.0 + 1.0)

    def test_dropout_eval_is_identity(self):
        x = nn.Tensor(np.ones((8, 8)))
        assert np.allclose(F.dropout(x, p=0.5, training=False).data, 1.0)

    def test_dropout_train_scales_kept_units(self):
        rng = np.random.default_rng(0)
        x = nn.Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.5, training=True, rng=rng).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_mse_and_l1_losses(self):
        a = nn.Tensor([1.0, 2.0])
        b = nn.Tensor([0.0, 4.0])
        assert F.mse_loss(a, b).item() == pytest.approx((1 + 4) / 2)
        assert F.l1_loss(a, b).item() == pytest.approx((1 + 2) / 2)

    def test_smooth_l1_between_l1_and_l2(self):
        a = nn.Tensor([0.0])
        b = nn.Tensor([3.0])
        value = F.smooth_l1_loss(a, b).item()
        assert value == pytest.approx(3.0 - 0.5)

    def test_cross_entropy_prefers_correct_class(self):
        logits = nn.Tensor([[10.0, 0.0], [0.0, 10.0]])
        good = F.cross_entropy(logits, np.array([0, 1])).item()
        bad = F.cross_entropy(logits, np.array([1, 0])).item()
        assert good < bad

    def test_attention_output_shape_and_weights(self):
        rng = np.random.default_rng(0)
        q = nn.Tensor(rng.normal(size=(2, 5, 8)))
        out, weights = F.scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_attention_mask_blocks_positions(self):
        q = nn.Tensor(np.random.default_rng(0).normal(size=(1, 3, 4)))
        mask = np.zeros((1, 3, 3))
        mask[:, :, 2] = -1e9
        _, weights = F.scaled_dot_product_attention(q, q, q, mask=mask)
        assert np.allclose(weights.data[..., 2], 0.0, atol=1e-6)


class TestInitialisers:
    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 32), rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.abs(w).max() <= bound + 1e-12

    def test_kaiming_normal_scale(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 128), rel=0.15)

    def test_truncated_normal_within_bounds(self):
        rng = np.random.default_rng(0)
        w = init.truncated_normal((1000,), rng, std=0.5, bound=2.0)
        assert np.abs(w).max() <= 1.0 + 1e-12

    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((3, 3)) == 1)


class TestLinearAndNorm:
    def test_linear_shapes(self):
        layer = nn.Linear(8, 4)
        out = layer(nn.Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 4)

    def test_linear_no_bias(self):
        layer = nn.Linear(8, 4, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_linear_batched_input(self):
        layer = nn.Linear(8, 4)
        out = layer(nn.Tensor(np.zeros((2, 3, 8))))
        assert out.shape == (2, 3, 4)

    def test_linear_trains_to_fit_line(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(1, 1, rng=rng)
        optimizer = nn.SGD(layer.parameters(), lr=0.1)
        x = rng.normal(size=(64, 1))
        y = 3.0 * x + 0.5
        for _ in range(300):
            optimizer.zero_grad()
            loss = F.mse_loss(layer(nn.Tensor(x)), nn.Tensor(y))
            loss.backward()
            optimizer.step()
        assert layer.weight.data[0, 0] == pytest.approx(3.0, abs=0.05)
        assert layer.bias.data[0] == pytest.approx(0.5, abs=0.05)

    def test_layernorm_module(self):
        layer = nn.LayerNorm(8)
        out = layer(nn.Tensor(np.random.default_rng(0).normal(size=(3, 8))))
        assert out.shape == (3, 8)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 6)
        out = emb(np.array([1, 3, 1]))
        assert out.shape == (3, 6)
        assert np.allclose(out.data[0], out.data[2])


class TestModulePlumbing:
    def test_parameters_discovered_recursively(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4
        assert any("layer0" in n for n in names)

    def test_num_parameters_and_size_bytes(self):
        model = nn.Linear(10, 10)
        assert model.num_parameters() == 110
        assert model.size_bytes() == 440

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_state_dict_roundtrip(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(0))
        b = nn.Linear(4, 4, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_missing_key_raises(self):
        a = nn.Linear(4, 4)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((4, 4))})

    def test_load_state_dict_shape_mismatch_raises(self):
        a = nn.Linear(4, 4)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 3)
        out = model(nn.Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_sequential_indexing(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert isinstance(model[1], nn.ReLU)
        assert len(model) == 2

    def test_identity_and_activation_modules(self):
        x = nn.Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(nn.Identity()(x).data, x.data)
        assert np.allclose(nn.ReLU()(x).data, [0.0, 2.0])
        assert np.allclose(nn.Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))
        assert np.allclose(nn.Tanh()(x).data, np.tanh(x.data))


class TestConvolutionAndPooling:
    def test_conv2d_output_shape_with_padding(self):
        conv = nn.Conv2d(3, 8, 3, padding=1)
        out = conv(nn.Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_conv2d_output_shape_with_stride(self):
        conv = nn.Conv2d(1, 4, 3, stride=2, padding=1)
        out = conv(nn.Tensor(np.zeros((1, 1, 16, 16))))
        assert out.shape == (1, 4, 8, 8)

    def test_conv2d_matches_manual_correlation(self):
        conv = nn.Conv2d(1, 1, 3, padding=0, bias=False)
        kernel = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        conv.weight.data = kernel
        image = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        out = conv(nn.Tensor(image)).data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (image[0, 0, i:i + 3, j:j + 3] * kernel[0, 0]).sum()
        assert np.allclose(out, expected)

    def test_conv2d_gradient_flows_to_input(self):
        conv = nn.Conv2d(2, 3, 3, padding=1)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(1, 2, 6, 6)), requires_grad=True)
        (conv(x) ** 2).mean().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_avgpool_reduces_and_averages(self):
        pool = nn.AvgPool2d(2)
        x = nn.Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = pool(x)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_upsample_nearest(self):
        up = nn.Upsample2d(2)
        x = nn.Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = up(x)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 1] == 1.0
        assert out.data[0, 0, 3, 3] == 4.0
