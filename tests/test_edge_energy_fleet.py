"""Tests for the energy/battery models and the multi-node fleet simulation."""

from __future__ import annotations

import pytest

from repro.codecs import JpegCodec, MbtCodec
from repro.edge import (
    BatteryModel,
    CameraNode,
    EdgeServerTestbed,
    EnergyModel,
    FleetSimulation,
    WirelessChannel,
)


@pytest.fixture(scope="module")
def testbed():
    return EdgeServerTestbed()


@pytest.fixture(scope="module")
def jpeg_report(testbed, kodak_small):
    return testbed.run(JpegCodec(quality=80), image=kodak_small[0])


@pytest.fixture(scope="module")
def mbt_report(testbed, kodak_small):
    return testbed.run(MbtCodec(quality=4), image=kodak_small[0])


class TestEnergyModel:
    def test_breakdown_components_are_positive(self, jpeg_report):
        energy = EnergyModel().per_image(jpeg_report)
        assert energy.compute_j > 0
        assert energy.transmit_j > 0
        assert energy.total_j == pytest.approx(
            energy.compute_j + energy.transmit_j + energy.idle_j)

    def test_mwh_conversion(self, jpeg_report):
        energy = EnergyModel().per_image(jpeg_report)
        assert energy.total_mwh == pytest.approx(energy.total_j / 3.6)

    def test_classical_codec_costs_less_edge_energy_than_neural(self, jpeg_report, mbt_report):
        """The Fig. 6 power story translated into energy per image."""
        model = EnergyModel()
        assert model.per_image(jpeg_report).compute_j < model.per_image(mbt_report).compute_j

    def test_including_model_load_increases_energy(self, mbt_report):
        model = EnergyModel()
        cold = model.per_image(mbt_report, include_load=True)
        warm = model.per_image(mbt_report, include_load=False)
        assert cold.total_j > warm.total_j

    def test_details_identify_the_codec(self, jpeg_report):
        energy = EnergyModel().per_image(jpeg_report)
        assert energy.details["codec"] == jpeg_report.codec_name


class TestBatteryModel:
    def test_images_per_charge_scales_inversely_with_energy(self):
        battery = BatteryModel(capacity_wh=10.0, usable_fraction=1.0)
        assert battery.images_per_charge(1.0) == 36_000
        assert battery.images_per_charge(2.0) == 18_000

    def test_lifetime_includes_standby_draw(self):
        battery = BatteryModel(capacity_wh=10.0, standby_w=1.0, usable_fraction=1.0)
        # zero capture rate: lifetime limited purely by standby (10 Wh / 1 W).
        assert battery.lifetime_hours(0.5, images_per_hour=0) == pytest.approx(10.0)

    def test_lifetime_days_conversion(self):
        battery = BatteryModel(capacity_wh=24.0, standby_w=1.0, usable_fraction=1.0)
        assert battery.lifetime_days(0.0, images_per_hour=0) == pytest.approx(1.0)

    def test_lower_energy_codec_extends_lifetime(self, jpeg_report, mbt_report):
        model = EnergyModel()
        battery = BatteryModel()
        jpeg_life = battery.lifetime_hours(model.per_image(jpeg_report), images_per_hour=30)
        mbt_life = battery.lifetime_hours(model.per_image(mbt_report), images_per_hour=30)
        assert jpeg_life > mbt_life

    def test_invalid_inputs_are_rejected(self):
        battery = BatteryModel()
        with pytest.raises(ValueError):
            battery.images_per_charge(0.0)
        with pytest.raises(ValueError):
            battery.lifetime_hours(1.0, images_per_hour=-1)


class TestFleetSimulation:
    def _fleet(self, num_nodes, bytes_per_image=20_000, images_per_hour=120,
               bandwidth_mbps=6.0):
        channel = WirelessChannel(bandwidth_mbps=bandwidth_mbps,
                                  per_transfer_overhead_ms=50.0)
        nodes = [CameraNode(f"cam-{i}", images_per_hour=images_per_hour,
                            bytes_per_image=bytes_per_image) for i in range(num_nodes)]
        return FleetSimulation(channel, nodes)

    def test_utilisation_scales_with_fleet_size(self):
        small = self._fleet(2).evaluate("jpeg")
        large = self._fleet(8).evaluate("jpeg")
        assert large.utilisation == pytest.approx(4 * small.utilisation, rel=1e-6)

    def test_queueing_delay_grows_with_load(self):
        light = self._fleet(2).evaluate("jpeg")
        heavy = self._fleet(20).evaluate("jpeg")
        assert heavy.mean_queueing_delay_ms > light.mean_queueing_delay_ms

    def test_saturation_is_flagged(self):
        report = self._fleet(100, bytes_per_image=200_000, images_per_hour=600,
                             bandwidth_mbps=1.0).evaluate("jpeg")
        assert report.saturated
        assert report.mean_queueing_delay_ms == float("inf")
        assert "SATURATED" in report.headline()

    def test_smaller_frames_reduce_congestion(self):
        big = self._fleet(10, bytes_per_image=80_000).evaluate("raw")
        small = self._fleet(10, bytes_per_image=8_000).evaluate("easz")
        assert small.utilisation < big.utilisation
        assert small.mean_total_latency_ms < big.mean_total_latency_ms

    def test_calibrate_node_sizes_with_real_codec(self, kodak_small):
        fleet = self._fleet(3, bytes_per_image=0.0)
        fleet.calibrate_node_sizes(JpegCodec(quality=70), kodak_small[0])
        report = fleet.evaluate("jpeg")
        assert all(entry["bytes_per_image"] > 0 for entry in report.per_node)

    def test_max_sustainable_nodes_monotone_in_frame_size(self):
        fleet = self._fleet(0)
        many = fleet.max_sustainable_nodes(bytes_per_image=5_000, images_per_hour=120)
        few = fleet.max_sustainable_nodes(bytes_per_image=50_000, images_per_hour=120)
        assert many > few > 0

    def test_max_sustainable_nodes_counts_exact_divisions(self):
        # regression: `0.7 // 0.1 == 6.0` in IEEE-754, so the old float
        # floor-division undercounted fleets whose per-node utilisation
        # divides the cap exactly — cap 0.7 at 0.1/node must admit 7 nodes
        channel = WirelessChannel(bandwidth_mbps=8.0, per_transfer_overhead_ms=0.0)
        fleet = FleetSimulation(channel, [])
        capacity = channel.throughput_bytes_per_s()
        images_per_hour = 360.0
        # choose a frame size giving exactly 0.1 utilisation per node
        bytes_per_image = 0.1 * capacity / (images_per_hour / 3600.0)
        assert fleet.max_sustainable_nodes(bytes_per_image, images_per_hour,
                                           utilisation_cap=0.7) == 7

    def test_errors_on_missing_calibration_or_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetSimulation(WirelessChannel(), []).evaluate()
        fleet = self._fleet(2, bytes_per_image=0.0)
        with pytest.raises(ValueError, match="calibrated"):
            fleet.evaluate()
        with pytest.raises(ValueError):
            fleet.max_sustainable_nodes(0, 10)
