"""Tests for the two-stage patchify and erase-and-squeeze operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    attention_complexity,
    erase_and_squeeze_image,
    erase_patch,
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    proposed_mask,
    squeeze_patch,
    squeezed_shape,
    subpatches_to_patch,
    subpatches_to_tokens,
    tokens_to_subpatches,
    two_stage_patchify,
    unsqueeze_image,
    unsqueeze_patch,
    validate_balanced_mask,
)


class TestPatchify:
    def test_image_to_patches_counts(self, gray_image):
        patches, grid, original = image_to_patches(gray_image, 16)
        assert patches.shape == (4 * 5, 16, 16)
        assert grid == (4, 5)
        assert original == gray_image.shape

    def test_patches_roundtrip_gray(self, gray_image):
        patches, grid, original = image_to_patches(gray_image, 16)
        assert np.allclose(patches_to_image(patches, grid, original), gray_image)

    def test_patches_roundtrip_color(self, rgb_image):
        patches, grid, original = image_to_patches(rgb_image, 16)
        assert patches.shape[-1] == 3
        assert np.allclose(patches_to_image(patches, grid, original), rgb_image)

    def test_padding_applied_for_odd_sizes(self):
        image = np.random.default_rng(0).random((30, 45))
        patches, grid, original = image_to_patches(image, 16)
        assert grid == (2, 3)
        assert np.allclose(patches_to_image(patches, grid, original), image)

    def test_subpatch_grid_shapes(self):
        patch = np.arange(16 * 16, dtype=float).reshape(16, 16)
        sub = patch_to_subpatches(patch, 4)
        assert sub.shape == (4, 4, 4, 4)
        assert np.allclose(subpatches_to_patch(sub), patch)

    def test_subpatch_color(self):
        patch = np.random.default_rng(0).random((16, 16, 3))
        sub = patch_to_subpatches(patch, 4)
        assert sub.shape == (4, 4, 4, 4, 3)
        assert np.allclose(subpatches_to_patch(sub), patch)

    def test_subpatch_rejects_indivisible(self):
        with pytest.raises(ValueError):
            patch_to_subpatches(np.zeros((16, 16)), 5)

    def test_tokens_roundtrip(self):
        patch = np.random.default_rng(0).random((16, 16))
        sub = patch_to_subpatches(patch, 4)
        tokens = subpatches_to_tokens(sub)
        assert tokens.shape == (16, 16)
        recovered = tokens_to_subpatches(tokens, 4, 4)
        assert np.allclose(subpatches_to_patch(recovered), patch)

    def test_tokens_roundtrip_color(self):
        patch = np.random.default_rng(0).random((8, 8, 3))
        tokens = subpatches_to_tokens(patch_to_subpatches(patch, 2))
        assert tokens.shape == (16, 2 * 2 * 3)
        recovered = tokens_to_subpatches(tokens, 4, 2, channels=3)
        assert np.allclose(subpatches_to_patch(recovered), patch)

    def test_two_stage_patchify_shapes(self, gray_image):
        tokens, grid, original = two_stage_patchify(gray_image, 16, 4)
        assert tokens.shape == (20, 16, 16)

    def test_subpatch_spatial_content_preserved(self):
        patch = np.zeros((8, 8))
        patch[0:2, 2:4] = 1.0  # sub-patch (0, 1) with b=2
        sub = patch_to_subpatches(patch, 2)
        assert np.all(sub[0, 1] == 1.0)
        assert sub.sum() == 4.0

    @given(st.integers(1, 4), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_patchify_roundtrip_property(self, scale, seed):
        rng = np.random.default_rng(seed)
        image = rng.random((16 * scale, 16 * scale))
        patches, grid, original = image_to_patches(image, 16)
        assert np.allclose(patches_to_image(patches, grid, original), image)


class TestAttentionComplexity:
    def test_two_stage_reduces_complexity(self):
        naive = attention_complexity(256, 256, patch_size=None, subpatch_size=1)
        staged = attention_complexity(256, 256, patch_size=32, subpatch_size=4)
        assert staged < naive
        # paper: pixel-token attention on 256x256 costs 4,294,967,296·d and the
        # two-stage patchify cuts it by at least the reported 4096x factor
        assert naive == pytest.approx(4_294_967_296)
        assert naive / staged >= 4096

    def test_paper_naive_number(self):
        assert attention_complexity(256, 256, None, 1) == pytest.approx(65536 ** 2)

    def test_complexity_scales_with_d_model(self):
        assert attention_complexity(64, 64, 16, 4, d_model=8) == pytest.approx(
            8 * attention_complexity(64, 64, 16, 4, d_model=1))

    def test_smaller_subpatch_costs_more(self):
        coarse = attention_complexity(128, 128, 32, 4)
        fine = attention_complexity(128, 128, 32, 2)
        assert fine > coarse


class TestEraseSqueeze:
    def test_validate_balanced_mask_accepts_row_balanced(self):
        assert validate_balanced_mask(proposed_mask(4, 1, seed=0)) == 3

    def test_validate_balanced_mask_rejects_unbalanced(self):
        mask = np.ones((4, 4), dtype=np.uint8)
        mask[0, :2] = 0
        with pytest.raises(ValueError):
            validate_balanced_mask(mask)

    def test_erase_patch_zeroes_erased_blocks(self):
        patch = np.ones((8, 8))
        mask = proposed_mask(4, 1, seed=0)
        erased = erase_patch(patch, mask, 2)
        assert erased.shape == (8, 8)
        assert erased.sum() == pytest.approx(4 * 3 * 4)  # 12 kept 2x2 blocks

    def test_squeeze_patch_shape_horizontal(self):
        patch = np.random.default_rng(0).random((8, 8))
        mask = proposed_mask(4, 1, seed=1)
        squeezed = squeeze_patch(patch, mask, 2)
        assert squeezed.shape == (8, 6)

    def test_squeeze_patch_shape_vertical(self):
        patch = np.random.default_rng(0).random((8, 8))
        mask = proposed_mask(4, 1, seed=1)
        squeezed = squeeze_patch(patch, mask.T, 2, direction="vertical")
        assert squeezed.shape == (6, 8)

    def test_squeeze_preserves_kept_content(self):
        patch = np.arange(64, dtype=float).reshape(8, 8)
        mask = np.ones((4, 4), dtype=np.uint8)
        mask[:, 3] = 0  # drop last sub-patch column
        squeezed = squeeze_patch(patch, mask, 2)
        assert np.allclose(squeezed, patch[:, :6])

    def test_squeeze_invalid_direction(self):
        with pytest.raises(ValueError):
            squeeze_patch(np.zeros((8, 8)), proposed_mask(4, 1, seed=0), 2, direction="diag")

    def test_unsqueeze_restores_kept_positions(self):
        patch = np.random.default_rng(3).random((8, 8))
        mask = proposed_mask(4, 1, seed=2)
        squeezed = squeeze_patch(patch, mask, 2)
        restored = unsqueeze_patch(squeezed, mask, 2, fill="zero")
        sub_original = patch_to_subpatches(patch, 2)
        sub_restored = patch_to_subpatches(restored, 2)
        kept = np.asarray(mask, dtype=bool)
        assert np.allclose(sub_restored[kept], sub_original[kept])
        assert np.allclose(sub_restored[~kept], 0.0)

    @pytest.mark.parametrize("fill", ["neighbor", "mean"])
    def test_unsqueeze_fill_strategies_are_nonzero(self, fill):
        patch = np.random.default_rng(3).random((8, 8)) + 0.1
        mask = proposed_mask(4, 1, seed=2)
        squeezed = squeeze_patch(patch, mask, 2)
        restored = unsqueeze_patch(squeezed, mask, 2, fill=fill)
        sub = patch_to_subpatches(restored, 2)
        assert np.all(sub[~np.asarray(mask, dtype=bool)] > 0.0)

    def test_unsqueeze_invalid_fill(self):
        with pytest.raises(ValueError):
            unsqueeze_patch(np.zeros((8, 6)), proposed_mask(4, 1, seed=0), 2, fill="magic")

    def test_erase_and_squeeze_image_shape(self, gray_image):
        mask = proposed_mask(4, 1, seed=0)
        squeezed, grid, original = erase_and_squeeze_image(gray_image, mask, 16, 4)
        expected = squeezed_shape(gray_image.shape, 16, 4, 1)
        assert squeezed.shape == expected
        assert original == gray_image.shape

    def test_erase_and_squeeze_image_color(self, rgb_image):
        mask = proposed_mask(4, 1, seed=0)
        squeezed, _, _ = erase_and_squeeze_image(rgb_image, mask, 16, 4)
        assert squeezed.shape == squeezed_shape(rgb_image.shape, 16, 4, 1)
        assert squeezed.shape[-1] == 3

    def test_squeezed_shape_reduces_width_by_erase_ratio(self):
        shape = squeezed_shape((64, 96), 16, 4, 1)
        assert shape == (64, 72)
        shape_v = squeezed_shape((64, 96), 16, 4, 1, direction="vertical")
        assert shape_v == (48, 96)

    def test_image_unsqueeze_roundtrip_on_kept_subpatches(self, gray_image):
        mask = proposed_mask(4, 1, seed=5)
        squeezed, grid, original = erase_and_squeeze_image(gray_image, mask, 16, 4)
        filled = unsqueeze_image(squeezed, mask, 16, 4, grid, gray_image.shape, fill="zero")
        assert filled.shape == gray_image.shape
        # every pixel is either exactly preserved or zero-filled
        preserved = np.isclose(filled, gray_image)
        zeroed = np.isclose(filled, 0.0)
        assert np.all(preserved | zeroed)
        # the zeroed fraction matches the erase ratio
        assert zeroed.mean() == pytest.approx(0.25, abs=0.08)

    def test_file_saving_from_squeeze(self, gray_image):
        """Squeezing before JPEG should reduce the compressed size (Fig. 3a)."""
        from repro.codecs import JpegCodec
        codec = JpegCodec(quality=75)
        baseline = codec.compress(gray_image).num_bytes
        mask = proposed_mask(4, 1, seed=0)
        squeezed, _, _ = erase_and_squeeze_image(gray_image, mask, 16, 4)
        reduced = codec.compress(squeezed).num_bytes
        assert reduced < baseline
