"""Wall-clock budget guards for the vectorized codec and serving fast paths.

The 512×512 RGB JPEG+easz encode→decode→reconstruct roundtrip runs in
roughly half a CPU-second with the plan-cached squeeze, the table-driven
entropy coder and the fused float32 reconstruction (see
``BENCH_throughput.json``).  The seed implementation's symbol-at-a-time /
per-patch Python loops took ~3 CPU-seconds on the same machine, so a budget
of 2.5 CPU-seconds leaves ~5x headroom for slower hardware while still
failing loudly if a hot path regresses to O(n) Python loops.

The serving guard plays the same role for the batched path: reconstructing
four 256² RGB images through ``reconstruct_batch`` takes ~0.27 CPU-seconds
with the fused engine (vs ~0.42 for sequential per-image calls); a 1.2
CPU-second budget fails loudly if the engine silently falls back to the
per-image path or a batched stage regresses to Python loops.

The sharded guard checks the *recorded* ``serving.sharded`` bar in
``BENCH_throughput.json`` (≥1.3x images/sec over the threaded server at 2
shards) instead of spawning a shard pool inside tier-1 — process startup and
a live replay would blow the suite's time budget, and the bench itself
already verifies response equivalence when it records the numbers.  Hosts
with a single visible CPU skip (sharding cannot help there; the bench writes
a ``skipped`` marker on such hosts for the same reason).

The shm guard does the same for the ``serving.shm`` bar: the zero-copy
shared-memory response ring must deliver ≥1.15x images/sec over the queue
path on the 2-shard 256² RGB decode workload (the transport-bound serving
kind).  It skips on <2-CPU hosts and wherever the bench recorded a
``skipped`` marker (no shared memory, single CPU).

CPU time (``time.process_time``) is used instead of wall-clock so a loaded
CI machine does not flake the guards.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.codecs.jpeg import JpegCodec
from repro.core import EaszCodec, EaszConfig, proposed_mask, reconstruct_batch
from repro.serve import available_cpus

_BUDGET_CPU_SECONDS = 2.5
_SERVING_BUDGET_CPU_SECONDS = 1.2
_SHARDED_SPEEDUP_BAR = 1.3
_SHM_SPEEDUP_BAR = 1.15
_ENTROPY_SPEEDUP_BAR = 3.0
_DCT_SPEEDUP_BAR = 1.5
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def test_jpeg_easz_roundtrip_512_rgb_within_budget():
    config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                        d_model=48, num_heads=4, encoder_blocks=2,
                        decoder_blocks=2, ffn_mult=2, loss_lambda=0.0)
    codec = EaszCodec(config=config, base_codec=JpegCodec(quality=75), seed=0)
    rng = np.random.default_rng(0)
    image = rng.random((512, 512, 3))

    # warm every plan/LUT/BLAS cache so the measurement sees steady state
    reconstruction, _ = codec.roundtrip(image)
    assert reconstruction.shape == image.shape

    start = time.process_time()
    reconstruction, compressed = codec.roundtrip(image)
    elapsed = time.process_time() - start

    assert reconstruction.shape == image.shape
    assert compressed.bpp() > 0
    assert elapsed < _BUDGET_CPU_SECONDS, (
        f"512x512 RGB JPEG+easz roundtrip took {elapsed:.2f} CPU-seconds "
        f"(budget {_BUDGET_CPU_SECONDS}); a hot path likely regressed to "
        "per-patch or per-symbol Python loops"
    )


def test_batched_reconstruction_within_budget():
    config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                        d_model=48, num_heads=4, encoder_blocks=2,
                        decoder_blocks=2, ffn_mult=2, loss_lambda=0.0)
    codec = EaszCodec(config=config, base_codec=JpegCodec(quality=75), seed=0)
    mask = proposed_mask(config.grid_size, config.erase_per_row,
                         config.intra_row_min_distance, seed=0)
    rng = np.random.default_rng(1)
    images = [rng.random((256, 256, 3)) for _ in range(4)]

    # warm the fused engine, the pixel plans and BLAS
    warm = reconstruct_batch(codec.model, images, mask)
    assert len(warm) == 4 and warm[0].shape == images[0].shape

    start = time.process_time()
    outputs = reconstruct_batch(codec.model, images, mask)
    elapsed = time.process_time() - start

    assert all(output.shape == image.shape for output, image in zip(outputs, images))
    assert elapsed < _SERVING_BUDGET_CPU_SECONDS, (
        f"batched reconstruction of 4x256x256 RGB took {elapsed:.2f} CPU-seconds "
        f"(budget {_SERVING_BUDGET_CPU_SECONDS}); the fused batch engine likely "
        "fell back to per-image calls or a batched stage regressed"
    )


def test_entropy_range_coder_bar_recorded_in_bench_json():
    """The range coder must have recorded >=3x combined encode+decode
    throughput over the legacy arithmetic coder on the bpg/neural symbol
    workload, at near-identical compression (see ``entropy_section`` in
    ``benchmarks/bench_throughput.py``)."""
    report = json.loads(_BENCH_JSON.read_text())
    section = report.get("entropy") or {}
    assert "speedup" in section, (
        "BENCH_throughput.json has no entropy section; re-run "
        "benchmarks/bench_throughput.py")
    assert section["speedup"] >= _ENTROPY_SPEEDUP_BAR, (
        f"range coder recorded only {section['speedup']:.2f}x over the legacy "
        f"arithmetic coder (bar {_ENTROPY_SPEEDUP_BAR}x); the byte-oriented "
        "hot loop has regressed")
    assert section["payload_bytes_range"] <= section["payload_bytes_legacy"] + 64, (
        "the range coder is buying speed with compression ratio")


def test_dct_batched_bar_recorded_in_bench_json():
    """The fused block-transform front end (plan-gathered blocks + one
    thread-parallel DCT GEMM across the micro-batch) must have recorded
    >=1.5x over the per-channel squeeze→pad→block→dct2 pipeline at
    batch >= 4 (see ``dct_section`` in ``benchmarks/bench_throughput.py``).

    Like the sharded/shm serving bars, the parallel bar needs cores to
    thread the GEMM over: single-CPU hosts record a ``skipped`` marker
    (plus unguarded single-thread numbers) and this guard skips with it.
    """
    if available_cpus() < 2:
        pytest.skip("the parallel DCT bar needs >= 2 visible CPUs")
    report = json.loads(_BENCH_JSON.read_text())
    section = report.get("dct") or {}
    if "skipped" in section or "speedup" not in section:
        pytest.skip("dct bench was not recorded on this host "
                    "(re-run benchmarks/bench_throughput.py on a multi-core box)")
    assert section["max_abs_diff"] < 1e-9
    assert section["speedup"] >= _DCT_SPEEDUP_BAR, (
        f"batched DCT recorded only {section['speedup']:.2f}x over per-channel "
        f"calls (bar {_DCT_SPEEDUP_BAR}x at batch>=4); the parallel "
        "single-GEMM formulation has regressed")


def test_sharded_throughput_bar_recorded_in_bench_json():
    if available_cpus() < 2:
        pytest.skip("process sharding needs >= 2 visible CPUs")
    report = json.loads(_BENCH_JSON.read_text())
    section = report.get("serving", {}).get("sharded") or {}
    if "skipped" in section or "speedup_vs_threaded" not in section:
        pytest.skip("sharded bench was not recorded on this host "
                    "(re-run benchmarks/bench_throughput.py on a multi-core box)")
    assert section["num_shards"] >= 2
    assert section["max_abs_diff_vs_sequential"] < 1e-5
    assert section["speedup_vs_threaded"] >= _SHARDED_SPEEDUP_BAR, (
        f"sharded serving recorded only {section['speedup_vs_threaded']:.2f}x over "
        f"the threaded server (bar {_SHARDED_SPEEDUP_BAR}x at "
        f"{section['num_shards']} shards); the shard pool has regressed"
    )


def test_shm_zero_copy_bar_recorded_in_bench_json():
    if available_cpus() < 2:
        pytest.skip("process sharding needs >= 2 visible CPUs")
    report = json.loads(_BENCH_JSON.read_text())
    section = report.get("serving", {}).get("shm") or {}
    if "skipped" in section or "speedup_vs_queue" not in section:
        pytest.skip("shm bench was not recorded on this host "
                    "(re-run benchmarks/bench_throughput.py on a multi-core box)")
    assert section["num_shards"] >= 2
    assert section["max_abs_diff_vs_reference"] == 0.0
    assert section["response_transport"].get("shm", 0) > 0, \
        "the shm run silently served everything from the queue path"
    assert section["speedup_vs_queue"] >= _SHM_SPEEDUP_BAR, (
        f"the shared-memory response ring recorded only "
        f"{section['speedup_vs_queue']:.2f}x over the queue path (bar "
        f"{_SHM_SPEEDUP_BAR}x at {section['num_shards']} shards); the "
        "zero-copy path has regressed or is falling back to the queue"
    )


def test_chaos_invariants_recorded_in_bench_json():
    """Every recorded chaos replay must show the exactly-once invariants.

    Unlike the timing bars these are enforced strictly — zero lost futures,
    zero duplicated resolutions, zero non-graceful decoder failures — on
    every sub-run ``chaos_serving_section`` recorded (sub-runs a host cannot
    measure carry ``skipped`` markers and are ignored).  A violation here is
    a correctness bug in the serving stack, never measurement noise, which
    is also why ``diff_bench.py`` has no NOISE_MARGIN-tolerant bar for it.
    """
    report = json.loads(_BENCH_JSON.read_text())
    section = report.get("serving", {}).get("chaos") or {}
    assert section, ("BENCH_throughput.json has no serving.chaos section; "
                     "re-run benchmarks/bench_throughput.py")
    recorded = {name: run for name, run in section.items()
                if isinstance(run, dict) and "skipped" not in run}
    assert recorded, "every chaos sub-run was skipped; the bench host is broken"
    for name, run in recorded.items():
        assert run["futures_lost"] == 0, \
            f"chaos run {name} lost {run['futures_lost']} futures"
        assert run["futures_duplicated"] == 0, \
            f"chaos run {name} resolved {run['futures_duplicated']} futures twice"
        assert run["decoder_crashes"] == 0, (
            f"chaos run {name} saw {run['decoder_crashes']} non-graceful "
            "decoder failures on damaged payloads")
        assert run["tenants"], f"chaos run {name} recorded no per-tenant SLOs"
        for tenant, slo in run["tenants"].items():
            assert 0.0 <= slo["slo_miss_rate"] <= 1.0, (tenant, slo)
