"""Wall-clock budget guard for the vectorized codec fast paths.

The 512×512 RGB JPEG+easz encode→decode→reconstruct roundtrip runs in
roughly half a CPU-second with the plan-cached squeeze, the table-driven
entropy coder and the fused float32 reconstruction (see
``BENCH_throughput.json``).  The seed implementation's symbol-at-a-time /
per-patch Python loops took ~3 CPU-seconds on the same machine, so a budget
of 2.5 CPU-seconds leaves ~5x headroom for slower hardware while still
failing loudly if a hot path regresses to O(n) Python loops.

CPU time (``time.process_time``) is used instead of wall-clock so a loaded
CI machine does not flake the guard.
"""

from __future__ import annotations

import time

import numpy as np

from repro.codecs.jpeg import JpegCodec
from repro.core import EaszCodec, EaszConfig

_BUDGET_CPU_SECONDS = 2.5


def test_jpeg_easz_roundtrip_512_rgb_within_budget():
    config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                        d_model=48, num_heads=4, encoder_blocks=2,
                        decoder_blocks=2, ffn_mult=2, loss_lambda=0.0)
    codec = EaszCodec(config=config, base_codec=JpegCodec(quality=75), seed=0)
    rng = np.random.default_rng(0)
    image = rng.random((512, 512, 3))

    # warm every plan/LUT/BLAS cache so the measurement sees steady state
    reconstruction, _ = codec.roundtrip(image)
    assert reconstruction.shape == image.shape

    start = time.process_time()
    reconstruction, compressed = codec.roundtrip(image)
    elapsed = time.process_time() - start

    assert reconstruction.shape == image.shape
    assert compressed.bpp() > 0
    assert elapsed < _BUDGET_CPU_SECONDS, (
        f"512x512 RGB JPEG+easz roundtrip took {elapsed:.2f} CPU-seconds "
        f"(budget {_BUDGET_CPU_SECONDS}); a hot path likely regressed to "
        "per-patch or per-symbol Python loops"
    )
