"""Failure-injection tests: damaged bitstreams must never crash a decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import BpgCodec, JpegCodec, MbtCodec, PngCodec
from repro.edge import (
    FaultInjector,
    check_decoder_robustness,
    drop_packets,
    flip_bits,
    truncate_payload,
)
from repro.metrics import psnr


class TestFaultPrimitives:
    def test_flip_bits_changes_exactly_some_bits(self):
        payload = bytes(64)
        damaged = flip_bits(payload, num_flips=8, seed=1)
        assert len(damaged) == len(payload)
        flipped = sum(bin(a ^ b).count("1") for a, b in zip(payload, damaged))
        assert 1 <= flipped <= 8  # collisions may flip a bit back

    def test_flip_bits_is_deterministic_per_seed(self):
        payload = bytes(range(256))
        assert flip_bits(payload, 16, seed=3) == flip_bits(payload, 16, seed=3)
        assert flip_bits(payload, 16, seed=3) != flip_bits(payload, 16, seed=4)

    def test_zero_flips_and_empty_payload_are_noops(self):
        assert flip_bits(b"abc", 0) == b"abc"
        assert flip_bits(b"", 10) == b""
        with pytest.raises(ValueError):
            flip_bits(b"abc", -1)

    def test_truncate_payload(self):
        payload = bytes(range(100))
        assert truncate_payload(payload, 0.25) == payload[:25]
        assert truncate_payload(payload, 1.0) == payload
        assert truncate_payload(payload, 0.0) == b""
        with pytest.raises(ValueError):
            truncate_payload(payload, 1.5)

    def test_drop_packets_preserves_length_and_zeroes_segments(self):
        payload = bytes([0xFF]) * 10_000
        damaged = drop_packets(payload, packet_bytes=1000, loss_rate=0.5, seed=2)
        assert len(damaged) == len(payload)
        zero_fraction = damaged.count(0) / len(damaged)
        assert 0.1 < zero_fraction < 0.9
        with pytest.raises(ValueError):
            drop_packets(payload, packet_bytes=0)
        with pytest.raises(ValueError):
            drop_packets(payload, loss_rate=2.0)

    def test_injector_composes_faults(self):
        injector = FaultInjector(bit_flips=4, truncate_to=0.5, packet_loss_rate=0.2)
        payload = bytes(range(200))
        damaged = injector.apply(payload)
        assert len(damaged) == 100
        assert not injector.is_clean
        assert FaultInjector().is_clean

    def test_injector_varies_damage_between_calls(self):
        injector = FaultInjector(bit_flips=8, seed=5)
        payload = bytes(1000)
        assert injector.apply(payload) != injector.apply(payload)


class TestFaultEdgeCases:
    def test_zero_length_payload_through_every_primitive(self):
        assert flip_bits(b"", 64, seed=1) == b""
        assert truncate_payload(b"", 0.5) == b""
        assert drop_packets(b"", loss_rate=1.0) == b""

    def test_zero_length_payload_through_injector(self):
        injector = FaultInjector(bit_flips=8, truncate_to=0.5, packet_loss_rate=0.5)
        assert injector.apply(b"") == b""

    def test_total_packet_loss_erases_everything_but_keeps_length(self):
        payload = bytes([0xAB]) * 4096
        damaged = drop_packets(payload, packet_bytes=512, loss_rate=1.0, seed=7)
        assert len(damaged) == len(payload)
        assert damaged == bytes(len(payload))

    def test_keep_fraction_zero_empties_the_payload(self):
        assert truncate_payload(bytes(range(50)), 0.0) == b""
        injector = FaultInjector(truncate_to=0.0)
        assert injector.apply(bytes(range(50))) == b""
        assert not injector.is_clean


class TestInjectorValidation:
    @pytest.mark.parametrize("kwargs", [
        {"bit_flips": -1},
        {"truncate_to": -0.1},
        {"truncate_to": 1.5},
        {"packet_loss_rate": -0.5},
        {"packet_loss_rate": 2.0},
        {"packet_bytes": 0},
    ], ids=["neg-flips", "neg-trunc", "over-trunc", "neg-loss", "over-loss",
            "zero-packet"])
    def test_bad_configuration_fails_at_construction(self, kwargs):
        # misconfiguration must fail when the injector is built, not when a
        # chaos scenario first applies it minutes into a run
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


@pytest.mark.parametrize("codec_factory", [
    lambda: JpegCodec(quality=70),
    lambda: BpgCodec(qp=32),
    lambda: MbtCodec(quality=4),
    lambda: PngCodec(),
], ids=["jpeg", "bpg", "mbt", "png"])
class TestFailureModeClassification:
    """Every codec's failure mode under extreme damage must be graceful.

    ``check_decoder_robustness`` only converts ValueError-class exceptions
    into a "rejected" result; anything else propagates and fails the test —
    that propagation IS the classification of a crash.
    """

    def test_empty_payload_is_rejected_not_crashed(self, codec_factory, kodak_small):
        codec = codec_factory()
        result = check_decoder_robustness(codec, kodak_small[0],
                                          FaultInjector(truncate_to=0.0),
                                          description="payload fully truncated")
        assert result.graceful
        # nothing decodes zero bytes into an image; a clean rejection names
        # the exception class for the chaos report
        assert result.outcome == "rejected"
        assert result.error_type

    def test_total_packet_loss_is_classified(self, codec_factory, kodak_small):
        codec = codec_factory()
        injector = FaultInjector(packet_loss_rate=1.0, packet_bytes=64, seed=21)
        result = check_decoder_robustness(codec, kodak_small[0], injector,
                                          metric=psnr,
                                          description="100% packet loss")
        assert result.graceful
        if result.outcome == "decoded":
            # an all-zeros bitstream that still decodes must yield a real
            # (if terrible) image, not NaNs
            assert np.isfinite(result.quality_db)


@pytest.mark.parametrize("codec_factory", [
    lambda: JpegCodec(quality=70),
    lambda: BpgCodec(qp=32),
    lambda: MbtCodec(quality=4),
    lambda: PngCodec(),
], ids=["jpeg", "bpg", "mbt", "png"])
class TestDecoderRobustness:
    def test_bit_corruption_is_handled_gracefully(self, codec_factory, kodak_small):
        codec = codec_factory()
        injector = FaultInjector(bit_flips=32, seed=11)
        result = check_decoder_robustness(codec, kodak_small[0], injector,
                                          metric=psnr, description="32 bit flips")
        assert result.graceful
        if result.outcome == "decoded":
            assert np.isfinite(result.quality_db)

    def test_truncation_is_handled_gracefully(self, codec_factory, kodak_small):
        codec = codec_factory()
        injector = FaultInjector(truncate_to=0.6, seed=12)
        result = check_decoder_robustness(codec, kodak_small[0], injector,
                                          description="40% tail loss")
        assert result.graceful

    def test_packet_loss_is_handled_gracefully(self, codec_factory, kodak_small):
        codec = codec_factory()
        injector = FaultInjector(packet_loss_rate=0.3, packet_bytes=256, seed=13)
        result = check_decoder_robustness(codec, kodak_small[0], injector,
                                          description="30% packet loss")
        assert result.graceful


class TestCleanChannelSanity:
    def test_clean_injector_changes_nothing(self, kodak_small):
        codec = JpegCodec(quality=70)
        result = check_decoder_robustness(codec, kodak_small[0], FaultInjector(), metric=psnr)
        assert result.outcome == "decoded"
        clean = codec.roundtrip(kodak_small[0])[1]
        assert result.quality_db == pytest.approx(
            psnr(kodak_small[0], codec.decompress(clean)), abs=1e-9)
