"""Tests for the Ballé baseline proxies and base-codec rate control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import (
    BalleFactorizedCodec,
    BalleHyperpriorCodec,
    ChengCodec,
    MbtCodec,
    QualitySelector,
    available_codecs,
    create_codec,
    quality_grid,
    select_quality_for_bpp,
)
from repro.metrics import psnr


class TestBalleCodecs:
    def test_registry_exposes_both_models(self):
        names = available_codecs()
        assert "balle-factorized" in names and "balle-hyperprior" in names

    def test_create_codec_by_name(self):
        codec = create_codec("balle-hyperprior", quality=5)
        assert isinstance(codec, BalleHyperpriorCodec)
        assert codec.quality == 5
        assert quality_grid("balle-hyperprior")

    def test_roundtrip_quality_is_reasonable(self, kodak_small):
        image = kodak_small[0]
        codec = BalleFactorizedCodec(quality=5)
        reconstruction, compressed = codec.roundtrip(image)
        assert reconstruction.shape == image.shape
        assert psnr(image, reconstruction) > 26.0
        assert 0.0 < compressed.bpp() < 8.0

    def test_model_size_ordering_matches_fig1(self):
        """Ballé-factorized < Ballé-hyperprior < MBT < Cheng in weight size."""
        shape = (512, 768, 3)
        sizes = [codec.encode_complexity(shape).model_bytes
                 for codec in (BalleFactorizedCodec(), BalleHyperpriorCodec(),
                               MbtCodec(), ChengCodec())]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_compute_cost_ordering_matches_fig1(self):
        shape = (512, 768, 3)
        macs = [codec.encode_complexity(shape).macs
                for codec in (BalleFactorizedCodec(), BalleHyperpriorCodec(),
                              MbtCodec(), ChengCodec())]
        assert macs == sorted(macs)

    def test_higher_quality_spends_more_bits(self, kodak_small):
        image = kodak_small[0]
        low = BalleHyperpriorCodec(quality=2).compress(image).bpp()
        high = BalleHyperpriorCodec(quality=7).compress(image).bpp()
        assert high > low

    def test_codecs_are_neural(self):
        assert BalleFactorizedCodec().is_neural
        assert BalleHyperpriorCodec().is_neural


class TestSelectQualityForBpp:
    def test_closest_mode_minimises_rate_error(self, kodak_small):
        image = kodak_small[0]
        selection = select_quality_for_bpp("jpeg", image, target_bpp=0.8,
                                           qualities=[10, 30, 50, 70, 90])
        errors = [abs(bpp - 0.8) for _, bpp in selection.trace]
        assert selection.error == pytest.approx(min(errors))

    def test_under_mode_never_exceeds_target_when_possible(self, kodak_small):
        image = kodak_small[0]
        selection = select_quality_for_bpp("jpeg", image, target_bpp=1.0,
                                           qualities=[10, 30, 50, 70, 90], prefer="under")
        assert selection.achieved_bpp <= 1.0

    def test_under_mode_falls_back_to_cheapest(self, kodak_small):
        image = kodak_small[0]
        selection = select_quality_for_bpp("jpeg", image, target_bpp=1e-4,
                                           qualities=[50, 90], prefer="under")
        cheapest = min(bpp for _, bpp in selection.trace)
        assert selection.achieved_bpp == pytest.approx(cheapest)

    def test_multiple_probe_images_are_averaged(self, kodak_small):
        selection = select_quality_for_bpp("jpeg", list(kodak_small), target_bpp=0.8,
                                           qualities=[50])
        per_image = [create_codec("jpeg", quality=50).compress(img).bpp()
                     for img in kodak_small]
        assert selection.achieved_bpp == pytest.approx(float(np.mean(per_image)))

    def test_default_grid_is_used_when_none_given(self, kodak_small):
        selection = select_quality_for_bpp("jpeg", kodak_small[0], target_bpp=0.8)
        assert selection.evaluations == len(quality_grid("jpeg"))

    def test_invalid_arguments_are_rejected(self, kodak_small):
        with pytest.raises(ValueError):
            select_quality_for_bpp("jpeg", kodak_small[0], target_bpp=0.0)
        with pytest.raises(ValueError):
            select_quality_for_bpp("jpeg", kodak_small[0], target_bpp=0.5, prefer="above")
        with pytest.raises(ValueError):
            select_quality_for_bpp("jpeg", [], target_bpp=0.5)
        with pytest.raises(KeyError):
            select_quality_for_bpp("definitely-not-a-codec", kodak_small[0], target_bpp=0.5)


class TestQualitySelector:
    def test_results_are_cached(self, kodak_small, monkeypatch):
        selector = QualitySelector(kodak_small[0])
        first = selector.select("jpeg", 0.8, qualities=[30, 60])
        calls = {"count": 0}

        def exploding(*args, **kwargs):  # pragma: no cover - would fail the test
            calls["count"] += 1
            raise AssertionError("cache miss")

        monkeypatch.setattr("repro.codecs.rate_control.select_quality_for_bpp", exploding)
        second = selector.select("jpeg", 0.8, qualities=[30, 60])
        assert second is first
        assert calls["count"] == 0

    def test_codec_for_instantiates_selected_quality(self, kodak_small):
        selector = QualitySelector(kodak_small[0])
        codec, selection = selector.codec_for("jpeg", 0.8, qualities=[30, 60, 90])
        assert str(selection.quality) in codec.name
        assert codec.compress(kodak_small[0]).bpp() == pytest.approx(selection.achieved_bpp,
                                                                     rel=1e-6)

    def test_distinct_targets_get_distinct_entries(self, kodak_small):
        selector = QualitySelector(kodak_small[0])
        low = selector.select("jpeg", 0.4, qualities=[10, 30, 60, 90])
        high = selector.select("jpeg", 1.5, qualities=[10, 30, 60, 90])
        assert low.achieved_bpp <= high.achieved_bpp
