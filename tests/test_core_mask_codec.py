"""Tests for the compact erase-mask transmission formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import proposed_mask, random_mask
from repro.core.mask_codec import (
    MaskSpec,
    decode_mask,
    encode_mask,
    mask_payload_format,
    pack_mask_bits,
    unpack_mask_bits,
)


class TestBitPacking:
    def test_roundtrip_proposed_mask(self):
        mask = proposed_mask(8, 2, seed=3)
        assert np.array_equal(unpack_mask_bits(pack_mask_bits(mask)), mask)

    def test_roundtrip_non_square_mask(self):
        mask = np.zeros((3, 7), dtype=np.uint8)
        mask[1, ::2] = 1
        assert np.array_equal(unpack_mask_bits(pack_mask_bits(mask)), mask)

    def test_paper_size_claim_32x32(self):
        """A 32×32 binary mask bit-packs to 128 bytes (plus a 5-byte header)."""
        mask = proposed_mask(32, 8, seed=0)
        payload = pack_mask_bits(mask)
        assert len(payload) == 5 + 128

    def test_rejects_non_2d_mask(self):
        with pytest.raises(ValueError):
            pack_mask_bits(np.ones(16, dtype=np.uint8))

    def test_rejects_wrong_payload(self):
        with pytest.raises(ValueError):
            unpack_mask_bits(b"\x00\x01\x02")

    @given(rows=st.integers(2, 12), cols=st.integers(2, 12), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_binary_matrices(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        mask = rng.integers(0, 2, size=(rows, cols)).astype(np.uint8)
        assert np.array_equal(unpack_mask_bits(pack_mask_bits(mask)), mask)


class TestMaskSpec:
    def test_generate_is_deterministic(self):
        spec = MaskSpec(grid_size=8, erase_per_row=2, seed=17)
        assert np.array_equal(spec.generate(), spec.generate())

    def test_encode_decode_roundtrip(self):
        spec = MaskSpec(grid_size=16, erase_per_row=3, intra_row_min_distance=1,
                        inter_row_min_distance=1, seed=123456)
        decoded = MaskSpec.decode(spec.encode())
        assert decoded == spec
        assert np.array_equal(decoded.generate(), spec.generate())

    def test_wire_format_is_ten_bytes(self):
        assert len(MaskSpec(grid_size=32, erase_per_row=8, seed=99).encode()) == 10

    def test_zero_erase_spec_keeps_everything(self):
        mask = MaskSpec(grid_size=4, erase_per_row=0).generate()
        assert mask.sum() == 16

    def test_rejects_oversized_seed(self):
        with pytest.raises(ValueError):
            MaskSpec(grid_size=8, erase_per_row=1, seed=2 ** 40).encode()

    def test_decode_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            MaskSpec.decode(b"\x42" + b"\x00" * 9)


class TestEncodeDecodeMask:
    def test_auto_picks_seed_when_available(self):
        spec = MaskSpec(grid_size=32, erase_per_row=8, seed=7)
        mask = spec.generate()
        payload = encode_mask(mask, spec=spec)
        assert mask_payload_format(payload) == "seed"
        assert len(payload) == 10
        assert np.array_equal(decode_mask(payload), mask)

    def test_every_forced_method_roundtrips(self):
        spec = MaskSpec(grid_size=8, erase_per_row=2, seed=4)
        mask = spec.generate()
        for method in ("bitpack", "rle", "seed"):
            payload = encode_mask(mask, spec=spec, method=method)
            assert mask_payload_format(payload) == method
            assert np.array_equal(decode_mask(payload), mask)

    def test_seed_method_unavailable_without_spec(self):
        mask = proposed_mask(8, 2, seed=1)
        with pytest.raises(ValueError, match="unavailable"):
            encode_mask(mask, method="seed")

    def test_mismatched_spec_is_rejected(self):
        spec = MaskSpec(grid_size=8, erase_per_row=2, seed=5)
        other = random_mask(8, 2, seed=99)
        with pytest.raises(ValueError, match="does not regenerate"):
            encode_mask(other, spec=spec)

    def test_auto_without_spec_never_exceeds_bitpack_size(self):
        mask = random_mask(16, 4, seed=11)
        payload = encode_mask(mask)
        assert len(payload) <= len(pack_mask_bits(mask))

    def test_decode_rejects_empty_and_unknown(self):
        with pytest.raises(ValueError):
            decode_mask(b"")
        with pytest.raises(ValueError):
            decode_mask(b"\xff\x01\x02")
        with pytest.raises(ValueError):
            mask_payload_format(b"\xff")

    @given(grid=st.integers(4, 16), erase=st.integers(1, 3), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_all_formats_agree(self, grid, erase, seed):
        erase = min(erase, grid - 1)
        delta = 1 if erase * 2 <= grid else 0
        spec = MaskSpec(grid_size=grid, erase_per_row=erase,
                        intra_row_min_distance=delta, seed=seed)
        mask = spec.generate()
        decoded = {method: decode_mask(encode_mask(mask, spec=spec, method=method))
                   for method in ("bitpack", "rle", "seed")}
        for method, value in decoded.items():
            assert np.array_equal(value, mask), method
