"""Tests for the from-scratch baseline JPEG codec."""

import numpy as np
import pytest

from repro.codecs.jpeg import JpegCodec, dct2, dct_matrix, idct2
from repro.codecs.jpeg_tables import (
    CHROMINANCE_QUANT_TABLE,
    INVERSE_ZIGZAG_ORDER,
    LUMINANCE_QUANT_TABLE,
    STANDARD_AC_LUMINANCE,
    STANDARD_DC_LUMINANCE,
    ZIGZAG_ORDER,
    build_huffman_lengths,
    quality_scaled_table,
)
from repro.metrics import psnr


class TestDctAndTables:
    def test_dct_matrix_is_orthonormal(self):
        d = dct_matrix(8)
        assert np.allclose(d @ d.T, np.eye(8), atol=1e-12)

    def test_dct_idct_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(10, 8, 8))
        assert np.allclose(idct2(dct2(blocks)), blocks, atol=1e-10)

    def test_dct_of_constant_block_is_dc_only(self):
        block = np.full((1, 8, 8), 3.0)
        coeffs = dct2(block)[0]
        assert coeffs[0, 0] == pytest.approx(24.0)
        assert np.abs(coeffs).sum() == pytest.approx(24.0)

    def test_zigzag_is_a_permutation(self):
        assert sorted(ZIGZAG_ORDER.tolist()) == list(range(64))
        assert np.array_equal(ZIGZAG_ORDER[INVERSE_ZIGZAG_ORDER], np.arange(64))

    def test_zigzag_starts_with_low_frequencies(self):
        assert ZIGZAG_ORDER[0] == 0
        assert set(ZIGZAG_ORDER[:3].tolist()) == {0, 1, 8}

    def test_quant_tables_shape_and_positivity(self):
        assert LUMINANCE_QUANT_TABLE.shape == (8, 8)
        assert CHROMINANCE_QUANT_TABLE.shape == (8, 8)
        assert LUMINANCE_QUANT_TABLE.min() > 0

    def test_quality_scaling_monotone(self):
        coarse = quality_scaled_table(LUMINANCE_QUANT_TABLE, 10)
        fine = quality_scaled_table(LUMINANCE_QUANT_TABLE, 90)
        assert np.all(coarse >= fine)
        assert fine.min() >= 1

    def test_quality_clipped_to_valid_range(self):
        table = quality_scaled_table(LUMINANCE_QUANT_TABLE, 1000)
        assert np.all(table >= 1) and np.all(table <= 255)

    def test_standard_huffman_specs_consistent(self):
        for spec in (STANDARD_DC_LUMINANCE, STANDARD_AC_LUMINANCE):
            bits, values = spec
            assert sum(bits) == len(values)
            lengths = build_huffman_lengths(spec)
            assert len(lengths) == len(values)
            kraft = sum(2.0 ** -length for length in lengths.values())
            assert kraft <= 1.0 + 1e-12


class TestJpegRoundtrip:
    def test_grayscale_roundtrip_quality(self, gray_image):
        codec = JpegCodec(quality=85)
        reconstruction, compressed = codec.roundtrip(gray_image)
        assert reconstruction.shape == gray_image.shape
        assert psnr(gray_image, reconstruction) > 28.0
        assert compressed.bpp() < 8.0

    def test_color_roundtrip_quality(self, rgb_image):
        codec = JpegCodec(quality=85)
        reconstruction, compressed = codec.roundtrip(rgb_image)
        assert reconstruction.shape == rgb_image.shape
        assert psnr(rgb_image, reconstruction) > 25.0

    def test_reconstruction_in_valid_range(self, rgb_image):
        reconstruction, _ = JpegCodec(quality=30).roundtrip(rgb_image)
        assert reconstruction.min() >= 0.0 and reconstruction.max() <= 1.0

    def test_higher_quality_more_bits_better_psnr(self, gray_image):
        low = JpegCodec(quality=20)
        high = JpegCodec(quality=90)
        rec_low, comp_low = low.roundtrip(gray_image)
        rec_high, comp_high = high.roundtrip(gray_image)
        assert comp_high.num_bytes > comp_low.num_bytes
        assert psnr(gray_image, rec_high) > psnr(gray_image, rec_low)

    def test_non_multiple_of_eight_dimensions(self):
        rng = np.random.default_rng(0)
        image = rng.random((37, 53))
        reconstruction, _ = JpegCodec(quality=80).roundtrip(image)
        assert reconstruction.shape == (37, 53)

    def test_disable_chroma_subsampling_increases_fidelity(self, rgb_image):
        sub = JpegCodec(quality=85, subsample_chroma=True)
        full = JpegCodec(quality=85, subsample_chroma=False)
        rec_sub, comp_sub = sub.roundtrip(rgb_image)
        rec_full, comp_full = full.roundtrip(rgb_image)
        assert comp_full.num_bytes >= comp_sub.num_bytes
        assert psnr(rgb_image, rec_full) >= psnr(rgb_image, rec_sub) - 0.2

    def test_constant_image_compresses_tiny(self):
        image = np.full((64, 64), 0.5)
        compressed = JpegCodec(quality=75).compress(image)
        assert compressed.bpp() < 0.2

    def test_decompress_rejects_foreign_payload(self, gray_image):
        codec = JpegCodec()
        compressed = codec.compress(gray_image)
        compressed.payload = b"XXXX" + compressed.payload[4:]
        with pytest.raises(ValueError):
            codec.decompress(compressed)

    def test_payload_header_records_dimensions(self, gray_image):
        compressed = JpegCodec().compress(gray_image)
        assert int.from_bytes(compressed.payload[4:6], "big") == gray_image.shape[0]
        assert int.from_bytes(compressed.payload[6:8], "big") == gray_image.shape[1]

    def test_codec_name_includes_quality(self):
        assert JpegCodec(quality=42).name == "jpeg-q42"

    def test_bpp_accounts_for_payload_size(self, gray_image):
        compressed = JpegCodec(quality=60).compress(gray_image)
        expected = 8.0 * compressed.num_bytes / (gray_image.shape[0] * gray_image.shape[1])
        assert compressed.bpp() == pytest.approx(expected)


class TestJpegComplexity:
    def test_encode_complexity_scales_with_pixels(self):
        codec = JpegCodec()
        small = codec.encode_complexity((64, 64))
        large = codec.encode_complexity((128, 128))
        assert large.macs == pytest.approx(4 * small.macs)

    def test_no_model_and_no_gpu(self):
        profile = JpegCodec().encode_complexity((64, 64, 3))
        assert profile.model_bytes == 0
        assert not profile.uses_gpu

    def test_rate_distortion_helper(self, gray_image):
        point = JpegCodec(quality=70).rate_distortion(gray_image, psnr, "psnr")
        assert point.bpp > 0
        assert point.quality > 20
        assert point.metric == "psnr"
