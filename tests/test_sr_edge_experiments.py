"""Tests for the SR baselines, the edge testbed simulation and the experiment harness."""

import numpy as np
import pytest

from repro.codecs import ChengCodec, JpegCodec, MbtCodec
from repro.core import EaszCodec, EaszConfig
from repro.edge import (
    EdgeServerTestbed,
    JETSON_TX2,
    LatencyModel,
    MemoryModel,
    PowerModel,
    RASPBERRY_PI4,
    SERVER_2080TI,
    SERVER_A100,
    WIFI_TCP,
    WirelessChannel,
)
from repro.codecs.base import ComplexityProfile
from repro.experiments import (
    Series,
    default_benchmark_config,
    evaluate_codec,
    evaluate_codec_on_dataset,
    format_kv_block,
    format_series_table,
    format_table,
    pretrained_model,
    rate_sweep,
    series_from_sweep,
    sparkline,
)
from repro.metrics import psnr
from repro.sr import (
    BicubicUpscaler,
    BsrganProxy,
    RealEsrganProxy,
    SR_BASELINES,
    SwinIRProxy,
)


class TestSuperResolution:
    def test_downsample_then_upscale_shapes(self, gray_image):
        sr = BicubicUpscaler(factor=2)
        low = sr.downsample(gray_image)
        assert low.shape == (gray_image.shape[0] // 2, gray_image.shape[1] // 2)
        up = sr.upscale(low, gray_image.shape)
        assert up.shape == gray_image.shape

    def test_roundtrip_reasonable_fidelity(self, gray_image):
        assert psnr(gray_image, BicubicUpscaler(2).roundtrip(gray_image)) > 22.0

    def test_reduction_ratio(self):
        assert BicubicUpscaler(2).reduction_ratio() == pytest.approx(0.25)

    @pytest.mark.parametrize("proxy_cls", [SwinIRProxy, RealEsrganProxy, BsrganProxy])
    def test_proxies_roundtrip_gray(self, proxy_cls, gray_image):
        proxy = proxy_cls(factor=2)
        out = proxy.roundtrip(gray_image)
        assert out.shape == gray_image.shape
        assert 0.0 <= out.min() and out.max() <= 1.0
        assert psnr(gray_image, out) > 20.0

    def test_proxies_roundtrip_color(self, rgb_image):
        out = SwinIRProxy(factor=2).roundtrip(rgb_image)
        assert out.shape == rgb_image.shape

    def test_proxy_model_sizes_match_paper(self):
        for proxy_cls in SR_BASELINES:
            assert proxy_cls.model_size_bytes == 67 * 2 ** 20
        assert BicubicUpscaler.model_size_bytes == 0

    def test_gan_proxies_differ_from_plain_bicubic(self, gray_image):
        bicubic = BicubicUpscaler(2).roundtrip(gray_image)
        esrgan = RealEsrganProxy(2).roundtrip(gray_image)
        assert not np.allclose(bicubic, esrgan)

    def test_refiner_training_is_stable(self, gray_image):
        proxy = SwinIRProxy(factor=2, refine=True)
        losses = proxy.train_refiner([gray_image], steps=20, lr=5e-4)
        assert np.all(np.isfinite(losses))
        assert np.mean(losses[-5:]) <= np.mean(losses[:5]) * 1.1

    def test_untrained_refiner_is_identity_residual(self, gray_image):
        with_refiner = SwinIRProxy(factor=2, refine=True).roundtrip(gray_image)
        without = SwinIRProxy(factor=2, refine=False).roundtrip(gray_image)
        assert np.allclose(with_refiner, without, atol=1e-9)


class TestDeviceAndChannelModels:
    def test_device_profiles_sanity(self):
        assert JETSON_TX2.has_gpu
        assert not RASPBERRY_PI4.has_gpu
        assert SERVER_2080TI.gpu_gmacs_per_s > JETSON_TX2.gpu_gmacs_per_s
        assert SERVER_A100.gpu_gmacs_per_s > SERVER_2080TI.gpu_gmacs_per_s

    def test_channel_latency_has_fixed_overhead(self):
        channel = WirelessChannel(bandwidth_mbps=10, per_transfer_overhead_ms=100)
        tiny = channel.transmit_latency_ms(10)
        assert tiny == pytest.approx(100, abs=1.0)
        assert channel.transmit_latency_ms(10 ** 6) > tiny

    def test_default_channel_matches_paper_transfer_times(self):
        """Fig. 1: transmitting a compressed 512×768 image takes ≈150 ms."""
        payload = int(0.4 * 512 * 768 / 8)  # ~0.4 bpp file
        latency = WIFI_TCP.transmit_latency_ms(payload)
        assert 120 <= latency <= 200

    def test_latency_model_gpu_vs_cpu_routing(self):
        model = LatencyModel()
        gpu_profile = ComplexityProfile(macs=1e9, uses_gpu=True)
        cpu_profile = ComplexityProfile(macs=1e9, uses_gpu=False)
        assert model.compute_latency_ms(gpu_profile, JETSON_TX2) < \
            model.compute_latency_ms(cpu_profile, JETSON_TX2)

    def test_latency_model_gpu_profile_on_cpu_only_device(self):
        model = LatencyModel()
        profile = ComplexityProfile(macs=1e9, uses_gpu=True)
        assert model.compute_latency_ms(profile, RASPBERRY_PI4) > \
            model.compute_latency_ms(profile, JETSON_TX2)

    def test_load_latency_zero_without_model(self):
        assert LatencyModel().load_latency_ms(0, JETSON_TX2) == 0.0

    def test_load_latency_scales_with_model_size(self):
        model = LatencyModel()
        small = model.load_latency_ms(10 * 2 ** 20, JETSON_TX2)
        large = model.load_latency_ms(100 * 2 ** 20, JETSON_TX2)
        assert large > 5 * small

    def test_power_model_gpu_stage_draws_more(self):
        power = PowerModel()
        gpu = power.estimate(ComplexityProfile(macs=1e11, uses_gpu=True), JETSON_TX2)
        cpu = power.estimate(ComplexityProfile(macs=1e7, uses_gpu=False), JETSON_TX2)
        assert gpu.total_w > cpu.total_w
        assert gpu.gpu_w > 0
        assert cpu.gpu_w <= JETSON_TX2.gpu_idle_w

    def test_memory_model_neural_stage_is_heavier(self):
        memory = MemoryModel()
        neural = memory.footprint_gb(
            ComplexityProfile(macs=1e11, model_bytes=100 * 2 ** 20, uses_gpu=True), JETSON_TX2)
        classic = memory.footprint_gb(ComplexityProfile(macs=1e7), JETSON_TX2)
        assert neural > classic + 0.5


class TestEdgeServerTestbed:
    @pytest.fixture(scope="class")
    def testbed(self):
        return EdgeServerTestbed()

    @pytest.fixture(scope="class")
    def easz_codec(self):
        config = EaszConfig.paper()
        return EaszCodec(config=config, base_codec=JpegCodec(quality=75))

    def test_report_fields(self, testbed, easz_codec):
        report = testbed.run(easz_codec, shape=(512, 768, 3), payload_bytes=20_000)
        assert report.codec_name.endswith("+easz")
        assert report.timing.total_ms > 0
        assert report.edge_memory_gb > 0
        assert 0 < report.bpp < 8

    def test_fig1_motivation_ordering(self, testbed):
        """NN-codec encode latency dwarfs transmission latency on the TX2."""
        payload = 20_000
        for codec in (MbtCodec(4), ChengCodec(4)):
            report = testbed.run(codec, shape=(512, 768, 3), payload_bytes=payload)
            assert report.timing.encode_ms > 50 * report.timing.transmit_ms
            assert report.timing.load_ms > report.timing.transmit_ms

    def test_fig6_easz_vs_neural_breakdown(self, testbed, easz_codec):
        shape = (512, 768, 3)
        easz = testbed.run(easz_codec, shape=shape, payload_bytes=20_000, include_load=False)
        mbt = testbed.run(MbtCodec(4), shape=shape, payload_bytes=20_000, include_load=False)
        cheng = testbed.run(ChengCodec(4), shape=shape, payload_bytes=20_000, include_load=False)
        # end-to-end latency: Easz far below both NN codecs (paper: ~89% lower)
        assert easz.timing.total_ms < 0.25 * mbt.timing.total_ms
        assert easz.timing.total_ms < 0.25 * cheng.timing.total_ms
        # erase-and-squeeze is a negligible share (paper: 0.7%)
        assert easz.timing.erase_squeeze_ms / easz.timing.total_ms < 0.05
        # reconstruction dominates Easz's own latency (paper: 74%)
        assert easz.timing.reconstruction_ms / easz.timing.total_ms > 0.4
        # power: Easz uses no GPU on the edge and much less total power
        assert easz.edge_gpu_power_w <= JETSON_TX2.gpu_idle_w
        assert easz.edge_total_power_w < 0.6 * mbt.edge_total_power_w
        # memory: roughly the 1.05 vs 1.9 GB split of Fig. 6c
        assert easz.edge_memory_gb < 1.3
        assert mbt.edge_memory_gb > 1.6

    def test_compression_level_switch_cost(self, testbed, easz_codec):
        assert testbed.compression_level_switch_ms(easz_codec) == 0.0
        assert testbed.compression_level_switch_ms(ChengCodec(4)) > 1000.0
        assert testbed.compression_level_switch_ms(JpegCodec(50)) == 0.0

    def test_run_with_real_image(self, testbed, tiny_config, gray_image, trained_tiny_model):
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=80),
                          model=trained_tiny_model, seed=0)
        report = testbed.run(codec, image=gray_image)
        assert report.payload_bytes > 0
        assert report.image_shape == gray_image.shape

    def test_run_requires_shape_or_image(self, testbed, easz_codec):
        with pytest.raises(ValueError):
            testbed.run(easz_codec)

    def test_timing_as_dict_sums(self, testbed, easz_codec):
        report = testbed.run(easz_codec, shape=(128, 192, 3), payload_bytes=5_000)
        timing = report.timing.as_dict()
        component_sum = (timing["erase_squeeze_ms"] + timing["encode_ms"] + timing["transmit_ms"]
                        + timing["decode_ms"] + timing["reconstruction_ms"])
        assert timing["total_ms"] == pytest.approx(component_sum)
        assert report.timing.total_with_load_ms >= timing["total_ms"]


class TestExperimentHarness:
    def test_format_table_alignment(self):
        text = format_table(["codec", "bpp"], [["jpeg", 0.41234], ["bpg", 0.3]])
        lines = text.splitlines()
        assert "codec" in lines[0] and "bpp" in lines[0]
        assert len(lines) == 4

    def test_format_kv_block(self):
        text = format_kv_block("summary", {"a": 1, "bb": 2.5})
        assert "summary" in text and "bb" in text

    def test_sparkline_monotone_input(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert line[0] != line[-1]

    def test_sparkline_degenerate(self):
        assert sparkline([1.0]) == ""
        assert sparkline([2.0, 2.0, 2.0]) == ""

    def test_series_table_output(self):
        series = Series("jpeg", [0.2, 0.4], [40.0, 30.0])
        text = format_series_table([series], "bpp", "brisque", title="fig")
        assert "jpeg" in text and "brisque" in text

    def test_evaluate_codec_scores(self, gray_image):
        scores, bpp = evaluate_codec(JpegCodec(quality=60), gray_image,
                                     no_reference=("brisque",), full_reference=("psnr",))
        assert set(scores) == {"brisque", "psnr"}
        assert bpp > 0

    def test_evaluate_codec_on_dataset_averages(self, kodak_small):
        evaluation = evaluate_codec_on_dataset(JpegCodec(quality=50), kodak_small,
                                               max_images=2, no_reference=("brisque",),
                                               full_reference=("psnr",))
        assert evaluation.num_images == 2
        assert evaluation.bpp > 0
        assert evaluation.row(["psnr"])[0].startswith("jpeg")

    def test_rate_sweep_sorted_and_monotone(self, kodak_small):
        sweep = rate_sweep(lambda q: JpegCodec(quality=q), [20, 80], kodak_small,
                           max_images=1, no_reference=(), full_reference=("psnr",))
        assert len(sweep) == 2
        assert sweep[0].bpp <= sweep[1].bpp
        assert sweep[0].scores["psnr"] <= sweep[1].scores["psnr"]
        series = series_from_sweep(sweep, "psnr", "jpeg")
        assert len(series.xs) == 2

    def test_default_benchmark_config(self):
        config = default_benchmark_config(erase_per_row=2)
        assert config.erase_per_row == 2
        assert config.patch_size % config.subpatch_size == 0

    def test_pretrained_model_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = default_benchmark_config(patch_size=8, subpatch_size=2, d_model=16,
                                          num_heads=2, encoder_blocks=1, decoder_blocks=1)
        first = pretrained_model(config, steps=3, batch_size=4, dataset_images=16)
        cached_files = list(tmp_path.glob("easz-*.npz"))
        assert len(cached_files) == 1
        second = pretrained_model(config, steps=3, batch_size=4, dataset_images=16)
        for (_, a), (_, b) in zip(first.named_parameters(), second.named_parameters()):
            assert np.allclose(a.data, b.data)
