"""Tests for the entropy-coding substrate (bit I/O, Huffman, RLE, arithmetic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
    BitReader,
    BitWriter,
    HuffmanCode,
    decode_binary_mask,
    decode_symbols,
    encode_binary_mask,
    encode_symbols,
    huffman_decode,
    huffman_encode,
    run_length_decode,
    run_length_encode,
)


class TestBitIO:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        assert writer.getvalue()[0] >> 4 == 0b1011

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 3, 7, 1):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 3, 7, 1]

    def test_read_past_end_returns_zero(self):
        reader = BitReader(b"\x80")
        assert reader.read_bits(8) == 0x80
        assert reader.read_bit() == 0

    def test_negative_bit_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    def test_bits_remaining_and_position(self):
        reader = BitReader(b"\xff\x00")
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.bits_remaining == 13

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_bit_sequence_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    @given(st.lists(st.tuples(st.integers(0, 2 ** 16 - 1), st.integers(1, 16)),
                    min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_field_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value & ((1 << width) - 1), width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value & ((1 << width) - 1)


class TestHuffman:
    def test_roundtrip_skewed_distribution(self):
        rng = np.random.default_rng(0)
        symbols = rng.choice([0, 1, 2, 3], size=2000, p=[0.7, 0.2, 0.07, 0.03]).tolist()
        payload, code, count = huffman_encode(symbols)
        assert huffman_decode(payload, code, count) == symbols

    def test_skewed_distribution_compresses_below_fixed_length(self):
        rng = np.random.default_rng(0)
        symbols = rng.choice([0, 1, 2, 3], size=4000, p=[0.85, 0.1, 0.03, 0.02]).tolist()
        payload, _, _ = huffman_encode(symbols)
        # 4 symbols need 2 bits each with a fixed code -> 1000 bytes
        assert len(payload) < 1000

    def test_empty_sequence(self):
        payload, code, count = huffman_encode([])
        assert payload == b"" and code is None and count == 0
        assert huffman_decode(payload, code, count) == []

    def test_single_symbol_alphabet(self):
        payload, code, count = huffman_encode(["a"] * 17)
        assert huffman_decode(payload, code, count) == ["a"] * 17

    def test_empty_frequencies_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode({})

    def test_prefix_free_property(self):
        code = HuffmanCode({"a": 10, "b": 5, "c": 2, "d": 1, "e": 1})
        codes = {s: f"{c:0{length}b}" for s, (c, length) in code.encode_table.items()}
        values = list(codes.values())
        for i, a in enumerate(values):
            for j, b in enumerate(values):
                if i != j:
                    assert not b.startswith(a)

    def test_more_frequent_symbols_get_shorter_codes(self):
        code = HuffmanCode({"frequent": 1000, "rare": 1})
        assert code.lengths["frequent"] <= code.lengths["rare"]

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(1)
        freqs = {i: int(rng.integers(1, 100)) for i in range(30)}
        code = HuffmanCode(freqs)
        kraft = sum(2.0 ** -length for length in code.lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_max_code_length_respected(self):
        freqs = {i: 2 ** i for i in range(20)}
        code = HuffmanCode(freqs, max_code_length=12)
        assert max(code.lengths.values()) <= 12
        kraft = sum(2.0 ** -length for length in code.lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_expected_length_bounded_by_entropy_plus_one(self):
        rng = np.random.default_rng(2)
        symbols = rng.choice(8, size=5000, p=[0.4, 0.2, 0.15, 0.1, 0.06, 0.05, 0.03, 0.01])
        freqs = {i: int((symbols == i).sum()) for i in range(8)}
        code = HuffmanCode(freqs)
        probs = np.array([freqs[i] for i in range(8)], dtype=float)
        probs /= probs.sum()
        entropy = -(probs * np.log2(probs)).sum()
        assert entropy <= code.expected_length(freqs) <= entropy + 1.0

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_arbitrary_sequences(self, symbols):
        payload, code, count = huffman_encode(symbols)
        assert huffman_decode(payload, code, count) == symbols


class TestRunLength:
    def test_basic_roundtrip(self):
        values = [1, 1, 1, 0, 0, 2, 2, 2, 2]
        assert run_length_decode(run_length_encode(values)) == values

    def test_empty_sequence(self):
        assert run_length_encode([]) == []
        assert run_length_decode([]) == []

    def test_runs_are_maximal(self):
        runs = run_length_encode([5, 5, 5, 5])
        assert runs == [(5, 4)]

    @given(st.lists(st.integers(0, 3), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        assert run_length_decode(run_length_encode(values)) == values

    def test_binary_mask_roundtrip(self):
        rng = np.random.default_rng(0)
        mask = (rng.random((32, 32)) > 0.3).astype(np.uint8)
        assert np.array_equal(decode_binary_mask(encode_binary_mask(mask)), mask)

    def test_binary_mask_never_larger_than_packed_bits(self):
        """Paper bound: a 32×32 binary mask costs ≈128 bytes; the serialiser
        must never exceed the bit-packed size plus its 5-byte header."""
        mask = np.ones((32, 32), dtype=np.uint8)
        mask[:, ::4] = 0
        payload = encode_binary_mask(mask)
        assert len(payload) <= 128 + 5

    def test_binary_mask_structured_uses_rle_and_is_tiny(self):
        mask = np.ones((32, 32), dtype=np.uint8)
        mask[:, :16] = 0
        payload = encode_binary_mask(mask)
        assert len(payload) < 110

    def test_binary_mask_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_binary_mask(np.zeros((2, 2, 2)))

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_binary_mask_roundtrip_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        mask = (rng.random((rows, cols)) > 0.5).astype(np.uint8)
        assert np.array_equal(decode_binary_mask(encode_binary_mask(mask)), mask)


class TestArithmeticCoding:
    def test_roundtrip_uniform_symbols(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 16, size=1000).tolist()
        payload = encode_symbols(symbols, 16)
        assert decode_symbols(payload, len(symbols), 16) == symbols

    def test_roundtrip_skewed_symbols_compresses(self):
        rng = np.random.default_rng(1)
        symbols = rng.choice(256, size=3000, p=[0.9] + [0.1 / 255] * 255).tolist()
        payload = encode_symbols(symbols, 256)
        assert decode_symbols(payload, len(symbols), 256) == symbols
        assert len(payload) < 3000 * 0.4

    def test_empty_sequence(self):
        payload = encode_symbols([], 4)
        assert decode_symbols(payload, 0, 4) == []

    def test_single_symbol_stream(self):
        symbols = [3] * 500
        payload = encode_symbols(symbols, 8)
        assert decode_symbols(payload, 500, 8) == symbols
        assert len(payload) < 120

    def test_adaptive_model_updates_counts(self):
        model = AdaptiveModel(4)
        before = model.counts.copy()
        model.update(2)
        assert model.counts[2] > before[2]
        assert model.total == model.cumulative[-1]

    def test_adaptive_model_rescales_when_saturated(self):
        model = AdaptiveModel(2)
        for _ in range(5000):
            model.update(0)
        assert model.counts.sum() <= 1 << 16

    def test_adaptive_model_invalid_size(self):
        with pytest.raises(ValueError):
            AdaptiveModel(0)

    def test_interval_and_lookup_consistency(self):
        model = AdaptiveModel(8)
        model.update(5)
        low, high, total = model.interval(5)
        assert model.symbol_from_count(low) == 5
        assert model.symbol_from_count(high - 1) == 5
        assert 0 <= low < high <= total

    def test_streaming_encoder_decoder_interoperate(self):
        encoder = ArithmeticEncoder()
        enc_model = AdaptiveModel(4)
        symbols = [0, 1, 2, 3, 0, 0, 1, 2, 0, 0, 0, 3]
        for symbol in symbols:
            encoder.encode(enc_model, symbol)
        payload = encoder.finish()
        decoder = ArithmeticDecoder(payload)
        dec_model = AdaptiveModel(4)
        assert [decoder.decode(dec_model) for _ in range(len(symbols))] == symbols

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=400), st.just(8))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, symbols, alphabet):
        payload = encode_symbols(symbols, alphabet)
        assert decode_symbols(payload, len(symbols), alphabet) == symbols
