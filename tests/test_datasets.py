"""Tests for the synthetic dataset stand-ins and patch loaders."""

import numpy as np
import pytest

from repro.datasets import (
    CifarLikeDataset,
    ClicDataset,
    ImageDataset,
    KodakDataset,
    PatchBatcher,
    SyntheticImageGenerator,
    extract_patches,
)


class TestSyntheticGenerator:
    def test_output_shape_and_range_color(self):
        generator = SyntheticImageGenerator(64, 96, color=True)
        image = generator.generate(0)
        assert image.shape == (64, 96, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_output_shape_gray(self):
        image = SyntheticImageGenerator(48, 48, color=False).generate(1)
        assert image.shape == (48, 48)

    def test_deterministic_for_same_seed(self):
        generator = SyntheticImageGenerator(32, 32, color=True)
        assert np.array_equal(generator.generate(5), generator.generate(5))

    def test_different_seeds_differ(self):
        generator = SyntheticImageGenerator(32, 32, color=False)
        assert not np.array_equal(generator.generate(1), generator.generate(2))

    def test_images_have_natural_dynamic_range(self):
        image = SyntheticImageGenerator(64, 64, color=False).generate(3)
        assert image.std() > 0.05
        assert 0.2 < image.mean() < 0.8

    def test_images_are_locally_correlated(self):
        """Natural images have strong neighbour correlation — the property the
        Easz reconstruction relies on."""
        image = SyntheticImageGenerator(64, 64, color=False).generate(4)
        horizontal = np.corrcoef(image[:, :-1].ravel(), image[:, 1:].ravel())[0, 1]
        assert horizontal > 0.8


class TestEvaluationDatasets:
    def test_kodak_profile(self):
        dataset = KodakDataset(num_images=3, height=64, width=96)
        assert len(dataset) == 3
        image = dataset[0]
        assert image.shape == (64, 96, 3)

    def test_kodak_default_has_24_images(self):
        assert len(KodakDataset()) == 24

    def test_kodak_full_resolution_flag(self):
        dataset = KodakDataset(num_images=1, full_resolution=True)
        assert (dataset.height, dataset.width) == (512, 768)

    def test_clic_profile_is_larger_than_kodak(self):
        clic = ClicDataset(num_images=1)
        kodak = KodakDataset(num_images=1)
        assert clic.height * clic.width > kodak.height * kodak.width

    def test_cifar_like_crops(self):
        dataset = CifarLikeDataset(num_images=16, size=32)
        image = dataset[3]
        assert image.shape == (32, 32)

    def test_caching_returns_same_object(self):
        dataset = KodakDataset(num_images=2, height=32, width=48)
        assert dataset[1] is dataset[1]

    def test_negative_indexing(self):
        dataset = KodakDataset(num_images=3, height=32, width=48)
        assert np.array_equal(dataset[-1], dataset[2])

    def test_out_of_range_raises(self):
        dataset = KodakDataset(num_images=2, height=32, width=48)
        with pytest.raises(IndexError):
            dataset[2]

    def test_iteration_yields_all_images(self):
        dataset = CifarLikeDataset(num_images=5, size=16)
        assert len(list(dataset)) == 5

    def test_datasets_are_deterministic_across_instances(self):
        a = KodakDataset(num_images=1, height=32, width=48, seed=7)[0]
        b = KodakDataset(num_images=1, height=32, width=48, seed=7)[0]
        assert np.array_equal(a, b)

    def test_base_class_generate_not_implemented(self):
        dataset = ImageDataset(num_images=1)
        with pytest.raises(NotImplementedError):
            dataset[0]


class TestPatchExtraction:
    def test_extract_patches_counts(self):
        image = np.zeros((32, 48))
        patches = extract_patches(image, 16)
        assert patches.shape == (2 * 3, 16, 16)

    def test_extract_patches_with_stride(self):
        image = np.zeros((32, 32))
        patches = extract_patches(image, 16, stride=8)
        assert patches.shape[0] == 3 * 3

    def test_extract_patches_color(self):
        patches = extract_patches(np.zeros((32, 32, 3)), 16)
        assert patches.shape == (4, 16, 16, 3)

    def test_extract_patches_too_small_image(self):
        assert extract_patches(np.zeros((8, 8)), 16).shape[0] == 0

    def test_patch_batcher_shapes(self):
        dataset = CifarLikeDataset(num_images=8, size=32)
        batcher = PatchBatcher(dataset, patch_size=16, batch_size=4)
        batches = list(batcher.batches(3))
        assert len(batches) == 3
        assert all(batch.shape == (4, 16, 16) for batch in batches)

    def test_patch_batcher_converts_rgb_to_luma(self):
        dataset = KodakDataset(num_images=2, height=48, width=48)
        batcher = PatchBatcher(dataset, patch_size=32, batch_size=2)
        batch = next(iter(batcher.batches(1)))
        assert batch.shape == (2, 32, 32)

    def test_patch_batcher_rejects_too_small_images(self):
        dataset = CifarLikeDataset(num_images=2, size=16)
        batcher = PatchBatcher(dataset, patch_size=32, batch_size=1)
        with pytest.raises(ValueError):
            next(iter(batcher.batches(1)))

    def test_patch_batcher_deterministic(self):
        dataset = CifarLikeDataset(num_images=8, size=32)
        a = next(iter(PatchBatcher(dataset, 16, 4, seed=3).batches(1)))
        b = next(iter(PatchBatcher(dataset, 16, 4, seed=3).batches(1)))
        assert np.array_equal(a, b)
