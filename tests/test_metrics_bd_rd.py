"""Tests for Bjøntegaard deltas, rate/quality curves and GMSD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RateQualityCurve,
    average_curves,
    bd_quality,
    bd_rate,
    gmsd,
    gradient_magnitude_similarity,
    pareto_front,
)

_RATES = [0.2, 0.4, 0.7, 1.0, 1.4]
_PSNRS = [29.0, 32.0, 34.0, 35.5, 36.5]


class TestBjontegaard:
    def test_identical_curves_have_zero_delta(self):
        assert bd_rate(_RATES, _PSNRS, _RATES, _PSNRS) == pytest.approx(0.0, abs=1e-9)
        assert bd_quality(_RATES, _PSNRS, _RATES, _PSNRS) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_rate_saving_is_recovered(self):
        """A codec needing 20% fewer bits at every quality shows BD-rate ≈ −20%."""
        cheaper = [r * 0.8 for r in _RATES]
        assert bd_rate(_RATES, _PSNRS, cheaper, _PSNRS) == pytest.approx(-20.0, abs=0.5)

    def test_uniform_quality_gain_is_recovered(self):
        better = [q + 1.5 for q in _PSNRS]
        assert bd_quality(_RATES, _PSNRS, _RATES, better) == pytest.approx(1.5, abs=1e-6)

    def test_bd_rate_sign_convention(self):
        worse = [r * 1.3 for r in _RATES]
        assert bd_rate(_RATES, _PSNRS, worse, _PSNRS) > 0

    def test_requires_at_least_four_points(self):
        with pytest.raises(ValueError, match="at least 4"):
            bd_rate([0.2, 0.4, 0.6], [30, 32, 33], _RATES, _PSNRS)

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError, match="strictly positive"):
            bd_rate([0.0, 0.4, 0.7, 1.0], _PSNRS[:4], _RATES, _PSNRS)

    def test_rejects_disjoint_rate_ranges(self):
        with pytest.raises(ValueError, match="overlap"):
            bd_quality(_RATES, _PSNRS, [10.0, 12.0, 14.0, 16.0], _PSNRS[:4])

    @given(scale=st.floats(0.5, 0.95))
    @settings(max_examples=20, deadline=None)
    def test_cheaper_curve_always_has_negative_bd_rate(self, scale):
        cheaper = [r * scale for r in _RATES]
        assert bd_rate(_RATES, _PSNRS, cheaper, _PSNRS) < 0


class TestRateQualityCurve:
    def _curve(self):
        curve = RateQualityCurve("jpeg", metric="psnr")
        for rate, quality in zip(_RATES, _PSNRS):
            curve.add(rate, quality)
        return curve

    def test_points_are_kept_sorted_by_rate(self):
        curve = RateQualityCurve("x")
        curve.add(1.0, 35.0).add(0.2, 29.0).add(0.6, 33.0)
        assert list(curve.rates) == sorted(curve.rates)

    def test_interpolation_between_points(self):
        curve = self._curve()
        assert curve.quality_at(0.3) == pytest.approx(30.5)
        assert curve.rate_at(33.0) == pytest.approx(0.55)

    def test_interpolation_clamps_outside_range(self):
        curve = self._curve()
        assert curve.quality_at(0.01) == pytest.approx(_PSNRS[0])
        assert curve.quality_at(10.0) == pytest.approx(_PSNRS[-1])

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            RateQualityCurve("empty").quality_at(0.5)

    def test_crossover_detection(self):
        slow_start = RateQualityCurve("a")
        strong_finish = RateQualityCurve("b")
        for rate in _RATES:
            slow_start.add(rate, 30.0 + 2.0 * rate)
            strong_finish.add(rate, 28.0 + 5.0 * rate)
        crossover = strong_finish.crossover(slow_start)
        assert crossover is not None
        assert 0.6 < crossover < 0.75
        assert strong_finish.dominates_at(slow_start, 1.2)
        assert not strong_finish.dominates_at(slow_start, 0.3)

    def test_crossover_none_when_always_behind(self):
        curve = self._curve()
        worse = RateQualityCurve("worse")
        for rate, quality in zip(_RATES, _PSNRS):
            worse.add(rate, quality - 2.0)
        assert worse.crossover(curve) is None

    def test_lower_is_better_metrics_flip_the_comparison(self):
        brisque_a = RateQualityCurve("a", metric="brisque", higher_is_better=False)
        brisque_b = RateQualityCurve("b", metric="brisque", higher_is_better=False)
        for rate in _RATES:
            brisque_a.add(rate, 40.0 - 10.0 * rate)
            brisque_b.add(rate, 30.0 - 10.0 * rate)
        assert brisque_b.dominates_at(brisque_a, 0.5)
        assert brisque_b.crossover(brisque_a) == pytest.approx(_RATES[0])

    def test_pareto_front_drops_dominated_points(self):
        curve = RateQualityCurve("x")
        curve.add(0.2, 30.0).add(0.4, 29.0).add(0.6, 33.0).add(0.8, 32.0)
        front = pareto_front(curve)
        assert [p["quality"] for p in front.points] == [30.0, 33.0]

    def test_average_curves(self):
        first, second = self._curve(), self._curve()
        second.points = [dict(p, quality=p["quality"] + 2.0) for p in second.points]
        averaged = average_curves([first, second], samples=8)
        assert len(averaged) == 8
        assert averaged.quality_at(0.5) == pytest.approx(first.quality_at(0.5) + 1.0, abs=0.2)

    def test_average_requires_overlap(self):
        low = RateQualityCurve("low").add(0.1, 30).add(0.2, 31)
        high = RateQualityCurve("high").add(1.0, 35).add(2.0, 36)
        with pytest.raises(ValueError, match="overlap"):
            average_curves([low, high])

    def test_as_series_conversion(self):
        series = self._curve().as_series()
        assert series.label == "jpeg"
        assert series.xs == list(_RATES)


class TestGmsd:
    def test_identical_images_score_zero(self, gray_image):
        assert gmsd(gray_image, gray_image) == pytest.approx(0.0, abs=1e-9)

    def test_similarity_map_is_bounded(self, gray_image, rng):
        noisy = np.clip(gray_image + 0.05 * rng.standard_normal(gray_image.shape), 0, 1)
        similarity = gradient_magnitude_similarity(gray_image, noisy)
        assert similarity.min() >= 0.0 and similarity.max() <= 1.0 + 1e-9

    def test_more_distortion_scores_worse(self, gray_image, rng):
        mild = np.clip(gray_image + 0.02 * rng.standard_normal(gray_image.shape), 0, 1)
        severe = np.clip(gray_image + 0.2 * rng.standard_normal(gray_image.shape), 0, 1)
        assert gmsd(gray_image, severe) > gmsd(gray_image, mild)

    def test_color_inputs_use_luma(self, rgb_image, rng):
        noisy = np.clip(rgb_image + 0.1 * rng.standard_normal(rgb_image.shape), 0, 1)
        assert gmsd(rgb_image, noisy) > 0

    def test_shape_mismatch_is_rejected(self, gray_image):
        with pytest.raises(ValueError):
            gmsd(gray_image, gray_image[:-2, :-2])

    def test_blocky_artifacts_score_worse_than_blur(self, gray_image):
        """GMSD is structure-sensitive: hard block edges hurt more than mild blur."""
        blurred = 0.5 * gray_image + 0.5 * np.roll(gray_image, 1, axis=0)
        blocky = gray_image.copy()
        blocky[::8, :] = 0.0
        assert gmsd(gray_image, blocky) > gmsd(gray_image, blurred)
