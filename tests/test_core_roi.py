"""Tests for region-of-interest aware erase-and-squeeze."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import JpegCodec, PngCodec
from repro.core import (
    EaszConfig,
    RoiEaszCodec,
    RoiEaszDecoder,
    RoiEaszEncoder,
    allocate_erase_levels,
    saliency_map,
)
from repro.metrics import psnr


@pytest.fixture(scope="module")
def roi_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def structured_image():
    """Flat background with a textured square: an unambiguous ROI."""
    rng = np.random.default_rng(3)
    image = np.full((64, 96), 0.5)
    image[16:48, 32:64] = 0.5 + 0.4 * rng.standard_normal((32, 32))
    return np.clip(image, 0.0, 1.0)


class TestSaliencyMap:
    def test_shape_matches_patch_grid(self, structured_image):
        saliency = saliency_map(structured_image, patch_size=16)
        assert saliency.shape == (4, 6)

    def test_values_are_normalised(self, structured_image):
        saliency = saliency_map(structured_image, patch_size=16)
        assert saliency.min() >= 0.0 and saliency.max() <= 1.0
        assert saliency.max() == pytest.approx(1.0)

    def test_textured_region_scores_higher_than_flat(self, structured_image):
        saliency = saliency_map(structured_image, patch_size=16)
        textured = saliency[1:3, 2:4].mean()
        flat = saliency[0, 0]
        assert textured > flat

    def test_constant_image_gives_zero_saliency(self):
        saliency = saliency_map(np.full((32, 32), 0.3), patch_size=16)
        assert np.allclose(saliency, 0.0)

    def test_color_images_are_supported(self, kodak_small):
        saliency = saliency_map(kodak_small[0], patch_size=16)
        assert saliency.ndim == 2
        assert np.isfinite(saliency).all()


class TestAllocateEraseLevels:
    def test_levels_respect_bounds(self, roi_config, structured_image):
        saliency = saliency_map(structured_image, 16)
        levels = allocate_erase_levels(saliency, roi_config, min_erase=1, max_erase=3)
        assert levels.min() >= 1 and levels.max() <= 3

    def test_salient_patches_get_less_erasure(self, roi_config, structured_image):
        saliency = saliency_map(structured_image, 16)
        levels = allocate_erase_levels(saliency, roi_config)
        most_salient = np.unravel_index(np.argmax(saliency), saliency.shape)
        least_salient = np.unravel_index(np.argmin(saliency), saliency.shape)
        assert levels[most_salient] <= levels[least_salient]

    def test_target_ratio_is_hit_on_average(self, roi_config, structured_image):
        saliency = saliency_map(structured_image, 16)
        levels = allocate_erase_levels(saliency, roi_config, target_ratio=0.5)
        achieved = levels.mean() / roi_config.grid_size
        assert achieved == pytest.approx(0.5, abs=0.13)

    def test_zero_target_means_no_erasure(self, roi_config, structured_image):
        saliency = saliency_map(structured_image, 16)
        levels = allocate_erase_levels(saliency, roi_config, target_ratio=0.0)
        assert levels.max() == 0

    def test_invalid_bounds_are_rejected(self, roi_config):
        with pytest.raises(ValueError):
            allocate_erase_levels(np.zeros((2, 2)), roi_config, min_erase=3, max_erase=1)


class TestRoiCodec:
    def test_roundtrip_preserves_shape_and_range(self, roi_config, kodak_small):
        codec = RoiEaszCodec(config=roi_config, base_codec=JpegCodec(quality=85),
                             target_ratio=0.25, seed=1)
        image = kodak_small[0]
        reconstruction, compressed = codec.roundtrip(image)
        assert reconstruction.shape == image.shape
        assert reconstruction.min() >= 0.0 and reconstruction.max() <= 1.0
        assert compressed.bpp() > 0

    def test_grayscale_roundtrip(self, roi_config, gray_image):
        codec = RoiEaszCodec(config=roi_config, base_codec=JpegCodec(quality=85),
                             target_ratio=0.25, seed=1)
        reconstruction, _ = codec.roundtrip(gray_image)
        assert reconstruction.shape == gray_image.shape

    def test_higher_target_ratio_lowers_bpp(self, roi_config, kodak_small):
        image = kodak_small[0]
        light = RoiEaszCodec(config=roi_config, base_codec=JpegCodec(quality=85),
                             target_ratio=0.0, seed=1)
        heavy = light.with_target_ratio(0.5)
        assert heavy.compress(image).bpp() < light.compress(image).bpp()

    def test_mismatched_levels_shape_is_rejected(self, roi_config, kodak_small):
        encoder = RoiEaszEncoder(roi_config, JpegCodec(quality=85))
        with pytest.raises(ValueError, match="levels shape"):
            encoder.encode(kodak_small[0], levels=np.zeros((1, 1), dtype=int))

    def test_explicit_levels_are_respected(self, roi_config, gray_image):
        encoder = RoiEaszEncoder(roi_config, PngCodec())
        levels = np.zeros((4, 5), dtype=int)  # 64x80 image -> 4x5 patch grid
        levels[0, :] = 2
        package = encoder.encode(gray_image, levels=levels)
        assert package.level_histogram() == {0: 15, 2: 5}

    def test_lossless_base_and_zero_erase_is_exact(self, roi_config, gray_image):
        """With no erasure and a lossless base codec the ROI pipeline is identity.

        The PNG-style codec stores 8-bit samples, so "exact" means exact up to
        one half quantisation step.
        """
        encoder = RoiEaszEncoder(roi_config, PngCodec(), target_ratio=0.0)
        decoder = RoiEaszDecoder(config=roi_config, base_codec=PngCodec())
        package = encoder.encode(gray_image)
        restored = decoder.decode(package, reconstruct=False)
        assert np.allclose(restored, gray_image, atol=0.5 / 255 + 1e-9)

    def test_reconstruction_beats_unfilled_holes(self, roi_config, gray_image,
                                                 trained_tiny_model):
        """Transformer inpainting must improve over leaving erased blocks at zero."""
        config = trained_tiny_model.config
        encoder = RoiEaszEncoder(config, PngCodec(), min_erase=1, max_erase=2, seed=2)
        decoder = RoiEaszDecoder(model=trained_tiny_model, config=config,
                                 base_codec=PngCodec())
        package = encoder.encode(gray_image)
        holes = decoder.decode(package, reconstruct=False)
        reconstructed = decoder.decode(package, reconstruct=True)
        assert psnr(gray_image, reconstructed) > psnr(gray_image, holes)

    def test_saliency_guided_beats_inverted_allocation(self, roi_config, structured_image,
                                                       trained_tiny_model):
        """Protecting salient patches must beat erasing them preferentially."""
        config = trained_tiny_model.config
        saliency = saliency_map(structured_image, config.patch_size)
        good_levels = allocate_erase_levels(saliency, config, target_ratio=0.35)
        bad_levels = allocate_erase_levels(1.0 - saliency, config, target_ratio=0.35)
        encoder = RoiEaszEncoder(config, PngCodec(), seed=3)
        decoder = RoiEaszDecoder(model=trained_tiny_model, config=config,
                                 base_codec=PngCodec())
        good = decoder.decode(encoder.encode(structured_image, levels=good_levels))
        bad = decoder.decode(encoder.encode(structured_image, levels=bad_levels))
        assert psnr(structured_image, good) >= psnr(structured_image, bad)

    def test_num_bytes_accounts_for_all_side_information(self, roi_config, gray_image):
        encoder = RoiEaszEncoder(roi_config, PngCodec(), target_ratio=0.25, seed=1)
        package = encoder.encode(gray_image)
        payload = sum(c.num_bytes for c in package.level_payloads.values())
        masks = sum(len(m) for m in package.level_masks.values())
        assert package.num_bytes >= payload + masks
