"""Tests for process-sharded serving, adaptive batch-wait, the result cache
and the M/D/c queueing bridge."""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import EaszConfig, EaszDecoder, EaszEncoder, EaszReconstructor, pack_package
from repro.edge import erlang_c, md_c_wait_s
from repro.serve import (
    AdmissionQueue,
    BatchPolicy,
    CompressionServer,
    MicroBatcher,
    PoissonLoadGenerator,
    QueueClosedError,
    ResultCache,
    ServerOverloadedError,
    ServerStats,
    ShardedCompressionServer,
    ShardFailedError,
    aggregate_snapshots,
)


@pytest.fixture(scope="module")
def serve_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def serve_model(serve_config):
    model = EaszReconstructor(serve_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def packages(serve_config):
    rng = np.random.default_rng(0)
    encoder = EaszEncoder(serve_config, seed=0)
    mask = encoder.generate_mask()
    images = [rng.random((48, 64, 3)) for _ in range(4)]
    return encoder.encode_batch(images, mask=mask)


@pytest.fixture(scope="module")
def decoder(serve_config, serve_model):
    return EaszDecoder(model=serve_model, config=serve_config,
                       base_codec=JpegCodec(quality=75))


def _sharded(serve_model, serve_config, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("batch_policy", BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
    return ShardedCompressionServer(model=serve_model, config=serve_config, **kwargs)


# --------------------------------------------------------------------------- #
# queueing theory: Erlang-C and the M/D/c correction
# --------------------------------------------------------------------------- #
class TestMDc:
    def test_collapses_to_md1_at_c1(self):
        lam, service = 3.0, 0.2
        rho = lam * service
        expected = rho * service / (2.0 * (1.0 - rho))
        assert md_c_wait_s(lam, service, 1) == pytest.approx(expected, rel=1e-12)

    def test_erlang_c_known_values(self):
        # M/M/1: P(wait) == rho
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        # M/M/2 with a = 1: C = 1/3 (classic textbook value)
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(2, 2.5) == 1.0  # at/over saturation every arrival waits

    def test_more_servers_wait_less(self):
        waits = [md_c_wait_s(4.0, 0.2, c) for c in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(waits, waits[1:]))
        assert waits[-1] > 0.0

    def test_pool_rescues_a_saturated_single_server(self):
        # lambda*S = 2 erlangs: one server diverges, three cope
        assert md_c_wait_s(10.0, 0.2, 1) == float("inf")
        assert md_c_wait_s(10.0, 0.2, 2) == float("inf")  # rho == 1 exactly
        assert math.isfinite(md_c_wait_s(10.0, 0.2, 3))

    def test_zero_load_and_validation(self):
        assert md_c_wait_s(0.0, 0.2, 2) == 0.0
        with pytest.raises(ValueError):
            md_c_wait_s(1.0, 0.1, 0)
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -0.1)

    def test_fleet_evaluate_servers_parameter(self):
        from repro.edge import WirelessChannel
        channel = WirelessChannel(bandwidth_mbps=6.0, per_transfer_overhead_ms=50.0)
        nodes = [__import__("repro.edge", fromlist=["CameraNode"]).CameraNode(
            f"cam-{i}", images_per_hour=1200, bytes_per_image=20_000) for i in range(8)]
        from repro.edge import FleetSimulation
        fleet = FleetSimulation(channel, nodes)
        single = fleet.evaluate("jpeg", servers=1)
        pooled = fleet.evaluate("jpeg", servers=2)
        assert pooled.utilisation == pytest.approx(single.utilisation / 2.0)
        assert pooled.mean_queueing_delay_ms < single.mean_queueing_delay_ms


# --------------------------------------------------------------------------- #
# adaptive batch-wait
# --------------------------------------------------------------------------- #
class TestAdaptiveBatchWait:
    def _batcher(self, **policy_kwargs):
        policy_kwargs.setdefault("mode", "adaptive")
        policy_kwargs.setdefault("max_batch_size", 4)
        policy_kwargs.setdefault("max_wait_ms", 10.0)
        return MicroBatcher(AdmissionQueue(max_depth=16), BatchPolicy(**policy_kwargs))

    @staticmethod
    def _arrival(t):
        class _Request:
            submitted_at = t
        return _Request()

    def test_defaults_to_ceiling_until_observed(self):
        batcher = self._batcher()
        assert batcher.effective_wait_s(1) == pytest.approx(10e-3)

    def test_loaded_waits_expected_fill_time(self):
        batcher = self._batcher(ewma_alpha=1.0)
        for t in (0.000, 0.001, 0.002, 0.003):
            batcher.observe_arrival(self._arrival(t))
        assert batcher.ewma_gap_s == pytest.approx(1e-3)
        # 3 more requests wanted at ~1 ms apart -> wait ~3 ms, not the 10 ms cap
        assert batcher.effective_wait_s(1) == pytest.approx(3e-3)
        assert batcher.effective_wait_s(3) == pytest.approx(1e-3)
        assert batcher.effective_wait_s(4) == 0.0

    def test_idle_serves_singles_instantly(self):
        batcher = self._batcher(ewma_alpha=1.0, min_wait_ms=0.0)
        batcher.observe_arrival(self._arrival(0.0))
        batcher.observe_arrival(self._arrival(5.0))  # one request every 5 s
        assert batcher.effective_wait_s(1) == 0.0

    def test_wait_clamped_to_ceiling(self):
        batcher = self._batcher(ewma_alpha=1.0)
        batcher.observe_arrival(self._arrival(0.0))
        batcher.observe_arrival(self._arrival(0.008))  # gap 8 ms < 10 ms cap
        assert batcher.effective_wait_s(1) == pytest.approx(10e-3)  # 3*8 ms clamped

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="poll_interval_ms"):
            BatchPolicy(poll_interval_ms=0.0)
        with pytest.raises(ValueError, match="mode"):
            BatchPolicy(mode="turbo")
        with pytest.raises(ValueError, match="min_wait_ms"):
            BatchPolicy(max_wait_ms=1.0, min_wait_ms=2.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            BatchPolicy(ewma_alpha=0.0)

    def test_fixed_mode_ignores_observations(self):
        batcher = MicroBatcher(AdmissionQueue(max_depth=4),
                               BatchPolicy(mode="fixed", max_wait_ms=7.0))
        batcher.observe_arrival(self._arrival(0.0))
        batcher.observe_arrival(self._arrival(10.0))
        assert batcher.effective_wait_s(1) == pytest.approx(7e-3)

    def test_wait_loop_clamped_to_anchor_deadline(self):
        # regression: the post-wait sleep used a stale `remaining`, so late
        # incompatible traffic pushed the batch past max_wait_ms by up to two
        # poll intervals
        class _Keyed:
            def __init__(self, key):
                self.batch_key = key

        queue = AdmissionQueue(max_depth=8)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=2, max_wait_ms=120.0,
                                                  poll_interval_ms=100.0))
        queue.put(_Keyed("anchor"))
        threading.Timer(0.08, lambda: queue.put(_Keyed("other"))).start()
        started = time.perf_counter()
        batch = batcher.next_batch(timeout=0.01)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        assert [request.batch_key for request in batch] == ["anchor"]
        # stale-remaining behaviour: ~80 ms wait + a full 100 ms sleep ≈ 180 ms;
        # the clamped loop exits at the 120 ms budget (wide margins so a loaded
        # single-core CI host cannot blur the two)
        assert elapsed_ms < 155.0, f"batch held {elapsed_ms:.1f} ms past its 120 ms budget"
        assert queue.depth == 1  # the incompatible request is untouched


# --------------------------------------------------------------------------- #
# cross-request result cache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_digest_distinguishes_payload_and_kind(self, packages):
        a = ResultCache.digest(packages[0], "reconstruct")
        assert a == ResultCache.digest(packages[0], "reconstruct")
        assert a != ResultCache.digest(packages[0], "decode")
        assert a != ResultCache.digest(packages[1], "reconstruct")

    def test_lookup_put_and_isolation(self):
        cache = ResultCache(capacity=2)
        image = np.arange(6.0).reshape(2, 3)
        assert cache.lookup(b"k") is None
        cache.put(b"k", image)
        image[0, 0] = 99.0  # caller mutates its array after the put
        hit = cache.lookup(b"k")
        assert hit[0, 0] == 0.0
        hit[0, 1] = 77.0  # consumer mutates its hit
        assert cache.lookup(b"k")[0, 1] == 1.0
        assert cache.hits == 2 and cache.misses == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(b"k", np.ones(3))
        assert cache.lookup(b"k") is None
        assert not cache.enabled

    def test_threaded_server_serves_repeats_from_cache(self, serve_config, serve_model,
                                                       packages, decoder):
        with CompressionServer(model=serve_model, config=serve_config, num_workers=1,
                               result_cache_size=8) as server:
            first = server.submit(packages[0]).result(timeout=120.0)
            second = server.submit(packages[0]).result(timeout=120.0)
            snapshot = server.stats.snapshot()
        assert not first.cached
        assert second.cached and second.worker == "result-cache"
        assert np.array_equal(first.image, second.image)
        reference = decoder.decode(packages[0])
        assert np.abs(second.image - reference).max() < 1e-5
        assert snapshot["result_cache"]["hits"] == 1
        assert snapshot["completed_cached"] == 1
        assert snapshot["completed"] == 1  # only the first touched a worker

    def test_sharded_server_serves_repeats_from_cache(self, serve_config, serve_model,
                                                      packages):
        with _sharded(serve_model, serve_config, result_cache_size=8) as server:
            first = server.submit(packages[1]).result(timeout=120.0)
            repeats = [server.submit(packages[1]).result(timeout=120.0)
                       for _ in range(3)]
            snapshot = server.stats.snapshot()
        assert not first.cached
        assert all(response.cached for response in repeats)
        for response in repeats:
            assert np.array_equal(response.image, first.image)
        assert snapshot["result_cache"]["hits"] == 3
        assert snapshot["completed"] == 1


# --------------------------------------------------------------------------- #
# sharded server end-to-end
# --------------------------------------------------------------------------- #
class TestShardedCompressionServer:
    def test_reconstruct_matches_threaded_reference(self, serve_config, serve_model,
                                                    packages, decoder):
        references = [decoder.decode(package) for package in packages]
        with _sharded(serve_model, serve_config) as server:
            pendings = [server.submit(package) for package in packages]
            responses = [pending.result(timeout=300.0) for pending in pendings]
        for response, reference in zip(responses, references):
            assert response.image.shape == reference.shape
            assert np.abs(response.image - reference).max() < 1e-5
            assert response.worker.startswith("shard-")

    def test_decode_kind_is_bit_exact(self, serve_config, serve_model, packages,
                                      decoder):
        reference = decoder.decode(packages[0], reconstruct=False)
        with _sharded(serve_model, serve_config) as server:
            response = server.submit(packages[0], kind="decode").result(timeout=300.0)
        assert np.array_equal(response.image, reference)

    def test_submit_bytes_over_the_wire(self, serve_config, serve_model, packages):
        with _sharded(serve_model, serve_config) as server:
            response = server.submit_bytes(pack_package(packages[0])).result(timeout=300.0)
        assert response.config_summary["base_codec"] == "jpeg-q75"
        assert response.image.shape == packages[0].original_shape

    def test_consistent_routing_keeps_a_key_on_one_shard(self, serve_config,
                                                         serve_model, packages):
        with _sharded(serve_model, serve_config) as server:
            shards = set()
            for _ in range(4):  # sequential singles: never past the spill threshold
                response = server.submit(packages[0]).result(timeout=300.0)
                shards.add(response.worker.split("/")[0])
        assert len(shards) == 1

    def test_corrupt_request_fails_alone(self, serve_config, serve_model, packages):
        import dataclasses
        healthy = packages[0]
        corrupt_payload = dataclasses.replace(
            healthy.codec_payload,
            payload=healthy.codec_payload.payload[:12] + b"\xff" * 6)
        corrupt = dataclasses.replace(healthy, codec_payload=corrupt_payload)
        with _sharded(serve_model, serve_config) as server:
            pending_corrupt = server.submit(corrupt)
            pending_healthy = server.submit(healthy)
            good = pending_healthy.result(timeout=300.0)
            with pytest.raises(ValueError):
                pending_corrupt.result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert good.image.shape == healthy.original_shape
        assert snapshot["failed"] >= 1

    def test_admission_rejects_synchronously_when_window_full(self, serve_config,
                                                              serve_model, packages):
        server = _sharded(serve_model, serve_config, num_shards=1, queue_depth=1,
                          batch_policy=BatchPolicy(max_batch_size=1, max_wait_ms=0.5))
        admitted, rejected = [], 0
        with server:
            for _ in range(30):
                try:
                    admitted.append(server.submit(packages[0]))
                except ServerOverloadedError:
                    rejected += 1
            for pending in admitted:
                pending.result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert rejected > 0
        assert snapshot["rejected"] == rejected
        assert snapshot["submitted"] == len(admitted)

    def test_stats_aggregate_across_shards(self, serve_config, serve_model, packages):
        with _sharded(serve_model, serve_config) as server:
            pendings = [server.submit(package) for package in packages * 2]
            for pending in pendings:
                pending.result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert snapshot["num_shards"] == 2
        assert snapshot["completed"] == len(pendings)
        assert snapshot["submitted"] == len(pendings)
        assert sum(size * count for size, count
                   in snapshot["batch_size_histogram"].items()) == len(pendings)
        assert len(snapshot["shards"]) == 2
        assert snapshot["caches"]  # per-shard worker caches surfaced

    def test_restart_shard_in_place(self, serve_config, serve_model, packages):
        with _sharded(serve_model, serve_config) as server:
            server.submit(packages[0]).result(timeout=300.0)
            completed_before = server.stats.snapshot()["completed"]
            old_process = server._shards[0].process
            server.restart_shard(0)
            assert not old_process.is_alive()
            assert server._shards[0].process.pid != old_process.pid
            # the retired generation's counters survive the restart
            assert server.stats.snapshot()["completed"] == completed_before
            response = server.submit(packages[0]).result(timeout=300.0)
        assert response.image.shape == packages[0].original_shape

    def test_crashed_shard_fails_or_reroutes_in_flight_futures(self, serve_config,
                                                               serve_model, packages):
        # a shard killed outside restart_shard() must not strand its callers
        # until their own result() timeout: the collector's reaper either
        # re-routes the request to a live shard or fails it promptly
        with _sharded(serve_model, serve_config) as server:
            server.submit(packages[0]).result(timeout=300.0)  # warm both paths
            victim = server._shards[0]
            pendings = [server.submit(package) for package in packages]
            victim.process.kill()
            outcomes = {"served": 0, "failed": 0}
            started = time.perf_counter()
            for pending in pendings:
                try:
                    pending.result(timeout=60.0)
                    outcomes["served"] += 1
                except ShardFailedError:
                    outcomes["failed"] += 1
            elapsed = time.perf_counter() - started
            assert outcomes["served"] + outcomes["failed"] == len(pendings)
            assert elapsed < 30.0, "crashed shard stranded futures until timeout"
            # the surviving shard keeps serving
            response = server.submit(packages[0]).result(timeout=300.0)
            assert response.image.shape == packages[0].original_shape

    def test_draining_shard_receives_no_new_work(self, serve_config, serve_model,
                                                 packages):
        # regression: a shard mid-drain is still is_alive() but has stopped
        # reading its request queue; routing to it stranded requests until
        # the restart timeout
        with _sharded(serve_model, serve_config) as server:
            home = server._route_locked(server._batch_key(packages[0], "reconstruct"))
            server._shards[home].draining = True
            rerouted = server._route_locked(server._batch_key(packages[0], "reconstruct"))
            assert rerouted != home
            response = server.submit(packages[0]).result(timeout=300.0)
            assert response.worker.startswith(f"shard-{rerouted}")
            server._shards[home].draining = False

    def test_graceful_restart_under_concurrent_traffic(self, serve_config,
                                                       serve_model, packages):
        with _sharded(serve_model, serve_config) as server:
            server.submit(packages[0]).result(timeout=300.0)  # warm
            stop_submitting = threading.Event()
            outcomes = []
            errors = []

            def submitter():
                while not stop_submitting.is_set():
                    try:
                        outcomes.append(server.submit(packages[0]).result(timeout=300.0))
                    except ServerOverloadedError:
                        pass
                    except Exception as error:  # noqa: BLE001 - fails the test
                        errors.append(error)
                        return
            thread = threading.Thread(target=submitter)
            thread.start()
            try:
                time.sleep(0.05)
                started = time.perf_counter()
                server.restart_shard(0, graceful=True, timeout=60.0)
                restart_s = time.perf_counter() - started
            finally:
                stop_submitting.set()
                thread.join(timeout=60.0)
            response = server.submit(packages[0]).result(timeout=300.0)
        assert not thread.is_alive()
        assert not errors, f"traffic failed during graceful restart: {errors[:3]}"
        assert outcomes, "no traffic flowed during the restart"
        assert restart_s < 30.0, "graceful restart burned its drain timeout"
        assert response.image.shape == packages[0].original_shape

    def test_stop_wakes_blocking_submitter_with_queue_closed(self, serve_config,
                                                             serve_model, packages):
        # regression: stop() set _closed without notifying _not_full, so a
        # blocking-mode submitter stalled its full put_timeout and then raised
        # the wrong error (ServerOverloadedError instead of QueueClosedError)
        server = _sharded(serve_model, serve_config, num_shards=1, queue_depth=1,
                          admission_policy="block", put_timeout=30.0,
                          batch_policy=BatchPolicy(max_batch_size=1, max_wait_ms=0.5))
        outcomes = []
        with server:
            for _ in range(3):  # fill the shard window so the next put blocks
                try:
                    server.submit(packages[0])
                except ServerOverloadedError:
                    break

            def blocked_submitter():
                try:
                    server.submit(packages[0])
                    outcomes.append("admitted")
                except QueueClosedError:
                    outcomes.append("closed")
                except ServerOverloadedError:
                    outcomes.append("overloaded")

            thread = threading.Thread(target=blocked_submitter)
            thread.start()
            time.sleep(0.05)
            started = time.perf_counter()
            server.stop(timeout=60.0)
            thread.join(timeout=10.0)
            woke_s = time.perf_counter() - started
        assert not thread.is_alive(), "stop() left a submitter blocked in admission"
        assert woke_s < 25.0, "blocking submitter waited out put_timeout despite stop()"
        assert outcomes in (["closed"], ["admitted"])

    def test_base_codec_reaches_the_shards(self, serve_config, serve_model, packages):
        # parity with the threaded server: the configured fallback codec is
        # seeded into each shard's prototype cache
        with _sharded(serve_model, serve_config, num_shards=1,
                      base_codec=JpegCodec(quality=75)) as server:
            assert server._server_options["base_codec"].name == "jpeg-q75"
            response = server.submit(packages[0]).result(timeout=300.0)
        assert response.config_summary["base_codec"] == "jpeg-q75"

    def test_start_after_stop_reopens_admission(self, serve_config, serve_model,
                                                packages):
        # regression: stop() left _closed set, so a restarted pool rejected
        # every submit with QueueClosedError while leaking idle shards
        server = _sharded(serve_model, serve_config, num_shards=1)
        with server:
            server.submit(packages[0]).result(timeout=300.0)
        with pytest.raises(QueueClosedError):
            server.submit(packages[0])
        server.start()
        try:
            response = server.submit(packages[0]).result(timeout=300.0)
            assert response.image.shape == packages[0].original_shape
        finally:
            server.stop(timeout=300.0)

    def test_submit_requires_started_server(self, serve_config, serve_model, packages):
        server = _sharded(serve_model, serve_config)
        with pytest.raises(RuntimeError, match="not started"):
            server.submit(packages[0])

    def test_rejects_unknown_kind_and_bad_config(self, serve_config, serve_model,
                                                 packages):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     num_shards=0)
        with _sharded(serve_model, serve_config, num_shards=1) as server, \
                pytest.raises(ValueError, match="kind"):
            server.submit(packages[0], kind="transcode")

    def test_stop_of_crashed_pool_is_prompt(self, serve_config, serve_model, packages):
        # a shard killed just before stop() must not make shutdown sleep out
        # the whole drain deadline waiting for responses that can never come
        server = _sharded(serve_model, serve_config)
        server.start()
        server.submit(packages[0]).result(timeout=300.0)
        pendings = [server.submit(package) for package in packages]
        for shard in server._shards:
            shard.process.kill()
        started = time.perf_counter()
        server.stop(timeout=60.0)
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0, "stop() burned its drain deadline on a crashed pool"
        for pending in pendings:
            assert pending.done()
            with pytest.raises((ShardFailedError, QueueClosedError)):
                pending.result(timeout=0.0)

    def test_stop_drains_no_stranded_futures(self, serve_config, serve_model, packages):
        """Sharded shutdown: every submitted future resolves or gets a
        QueueClosedError — nothing left blocking forever."""
        server = _sharded(serve_model, serve_config)
        server.start()
        pendings = [server.submit(package) for package in packages * 3]
        server.stop(timeout=300.0)
        outcomes = {"ok": 0, "closed": 0}
        for pending in pendings:
            assert pending.done(), "stop() left a stranded PendingResult"
            try:
                pending.result(timeout=0.0)
                outcomes["ok"] += 1
            except QueueClosedError:
                outcomes["closed"] += 1
        assert outcomes["ok"] + outcomes["closed"] == len(pendings)
        with pytest.raises(QueueClosedError):
            server.submit(packages[0])


# --------------------------------------------------------------------------- #
# admission queue close/drain races (sharded shutdown path)
# --------------------------------------------------------------------------- #
class TestAdmissionQueueCloseRaces:
    def test_close_wakes_blocked_putter_with_queue_closed(self):
        queue = AdmissionQueue(max_depth=1, policy="block", put_timeout=30.0)
        queue.put("a")
        outcome = []

        def blocked_putter():
            try:
                queue.put("b")
                outcome.append("admitted")
            except QueueClosedError:
                outcome.append("closed")
            except ServerOverloadedError:
                outcome.append("overloaded")

        thread = threading.Thread(target=blocked_putter)
        thread.start()
        time.sleep(0.05)  # let the putter block on the not_full condition
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "close() left a submitter blocked mid-put"
        assert outcome == ["closed"]

    def test_close_wakes_blocked_popper(self):
        queue = AdmissionQueue(max_depth=4)
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop(timeout=30.0)))
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_concurrent_close_and_put_storm_strands_nothing(self):
        queue = AdmissionQueue(max_depth=4, policy="block", put_timeout=0.2)
        admitted, refused = [], []

        def submitter(tag):
            try:
                queue.put(tag)
                admitted.append(tag)
            except (QueueClosedError, ServerOverloadedError):
                refused.append(tag)

        threads = [threading.Thread(target=submitter, args=(index,))
                   for index in range(16)]
        for thread in threads:
            thread.start()
        time.sleep(0.02)
        queue.close()
        for thread in threads:
            thread.join(timeout=5.0)
        assert all(not thread.is_alive() for thread in threads)
        assert len(admitted) + len(refused) == 16
        drained = []
        while True:
            item = queue.pop(timeout=0.0)
            if item is None:
                break
            drained.append(item)
        assert sorted(drained) == sorted(admitted)


# --------------------------------------------------------------------------- #
# load generator: failure collection, NaN reporting, M/D/c bridge
# --------------------------------------------------------------------------- #
class _AlwaysRejectingServer:
    """Stub whose admission queue is permanently full."""

    parallelism = 1

    def __init__(self):
        self.stats = ServerStats()

    def submit(self, package, kind="reconstruct"):
        self.stats.record_rejected()
        raise ServerOverloadedError("queue at capacity")


class TestLoadGeneratorFixes:
    def test_one_failed_request_does_not_lose_the_report(self, serve_config,
                                                         serve_model, packages):
        import dataclasses
        healthy = packages[0]
        corrupt_payload = dataclasses.replace(
            healthy.codec_payload,
            payload=healthy.codec_payload.payload[:12] + b"\xff" * 6)
        corrupt = dataclasses.replace(healthy, codec_payload=corrupt_payload)
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1, queue_depth=64) as server:
            generator = PoissonLoadGenerator(server, rng=np.random.default_rng(5))
            report = generator.run([healthy, corrupt], arrival_rate_rps=50.0,
                                   num_requests=6, timeout=300.0)
        assert report.failed == 3  # every other request cycles onto the corrupt frame
        assert report.completed == 3
        assert report.latency_p50_ms > 0  # surviving latencies still reported
        assert report.completed + report.failed + report.rejected == report.num_requests

    def test_zero_completions_reports_nan_not_fake_zero(self, packages):
        generator = PoissonLoadGenerator(_AlwaysRejectingServer(),
                                         rng=np.random.default_rng(6))
        report = generator.run(packages[:1], arrival_rate_rps=100.0,
                               num_requests=5, warmup=False)
        assert report.completed == 0
        assert report.rejected == 5
        assert report.saturated  # everything rejected == overload by definition
        assert math.isnan(report.latency_p50_ms)
        assert math.isnan(report.latency_p99_ms)
        assert math.isnan(report.observed_wait_mean_ms)
        assert math.isnan(report.service_time_per_image_ms)

    def test_cache_absorbed_run_reports_zero_wait_not_nan(self, serve_config,
                                                          serve_model, packages):
        # a static scene fully served from the result cache did not queue at
        # all: utilisation and waits are genuinely zero, not "no data"
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1, result_cache_size=8) as server:
            generator = PoissonLoadGenerator(server, rng=np.random.default_rng(8))
            # warmup populates the cache with the single distinct frame
            report = generator.run(packages[:1], arrival_rate_rps=100.0,
                                   num_requests=4, timeout=300.0)
        assert report.completed == 4
        assert not report.saturated
        assert report.utilisation == 0.0
        assert report.predicted_wait_mdc_ms == 0.0
        assert report.observed_wait_mean_ms == 0.0
        assert math.isnan(report.service_time_per_image_ms)  # nothing measured

    def test_sharded_observed_wait_tracks_mdc_prediction(self, serve_config,
                                                         serve_model, packages):
        # the sharded analogue of the M/D/1 light-load bracket: at low
        # utilisation both the observed wait and the M/D/c prediction sit far
        # below the per-image service time
        with _sharded(serve_model, serve_config, queue_depth=64) as server:
            generator = PoissonLoadGenerator(server, rng=np.random.default_rng(4))
            report = generator.run(packages[:2], arrival_rate_rps=2.0,
                                   num_requests=6, timeout=300.0)
        assert report.servers == 2
        assert not report.saturated
        assert report.utilisation < 0.5
        assert report.predicted_wait_mdc_ms < report.service_time_per_image_ms
        assert report.predicted_wait_mdc_ms <= report.predicted_wait_md1_ms
        assert report.observed_wait_mean_ms < report.latency_mean_ms
        assert f"M/D/{report.servers}" in report.headline()


# --------------------------------------------------------------------------- #
# snapshot aggregation
# --------------------------------------------------------------------------- #
class TestAggregateSnapshots:
    def test_counters_add_and_percentiles_weight(self):
        a = ServerStats()
        a.record_batch(2, queue_waits=[0.01, 0.01], latencies=[0.1, 0.1],
                       service_seconds=0.05)
        b = ServerStats()
        b.record_batch(1, queue_waits=[0.02], latencies=[0.3], service_seconds=0.04)
        merged = aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert merged["completed"] == 3
        assert merged["batches"] == 2
        assert merged["batch_size_histogram"] == {1: 1, 2: 1}
        assert merged["service_seconds_total"] == pytest.approx(0.09)
        # completion-weighted latency: (2*100 + 1*300) / 3
        assert merged["latency_p50_ms"] == pytest.approx(500.0 / 3.0)
        assert len(merged["shards"]) == 2

    def test_empty_is_well_formed(self):
        merged = aggregate_snapshots([])
        assert merged["completed"] == 0
        assert merged["shards"] == []
