"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_commands_are_registered(self):
        parser = build_parser()
        for command in ("info", "codecs", "roundtrip", "evaluate", "train", "experiment"):
            args = parser.parse_args([command] if command != "experiment" else [command, "fig1"])
            assert args.command == command

    def test_roundtrip_defaults(self):
        args = build_parser().parse_args(["roundtrip"])
        assert args.codec == "jpeg"
        assert not args.easz
        assert args.erase_ratio == pytest.approx(0.25)

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_unknown_codec_is_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["roundtrip", "--codec", "webp"])

    def test_serve_bench_scenario_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--scenario", "kill-shards",
             "--scenario-report", "out.json"])
        assert args.scenario == "kill-shards"
        assert args.scenario_report == "out.json"
        assert not args.list_scenarios
        assert build_parser().parse_args(["serve-bench"]).scenario is None


class TestServeBenchScenarios:
    def test_list_scenarios_prints_matrix_without_building_a_model(self, capsys):
        assert main(["serve-bench", "--list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("kill-shards", "corrupt-payloads", "chaos-mix"):
            assert name in output

    def test_unknown_scenario_fails_fast(self, capsys):
        # must error out before the pretrained-model build (exit 2, not hang)
        assert main(["serve-bench", "--scenario", "no-such-scenario"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "kill-shards" in err  # the message names the valid choices

    def test_serve_bench_shm_and_watchdog_flags(self):
        args = build_parser().parse_args(["serve-bench", "--shards", "2"])
        assert args.shm and not args.watchdog
        assert args.watchdog_interval == pytest.approx(1.0)
        args = build_parser().parse_args(
            ["serve-bench", "--shards", "2", "--no-shm", "--watchdog",
             "--watchdog-interval", "0.5"])
        assert not args.shm and args.watchdog
        assert args.watchdog_interval == pytest.approx(0.5)

    def test_serve_bench_rejects_nonpositive_watchdog_interval(self):
        # mirrors BatchPolicy's poll_interval_ms validation: a zero interval
        # would spin the watchdog loop
        assert main(["serve-bench", "--shards", "1", "--watchdog",
                     "--watchdog-interval", "0"]) == 2


class TestCommands:
    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_info_lists_codecs_and_devices(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "jpeg" in output and "jetson-tx2" in output

    def test_codecs_table_includes_quality_grids(self, capsys):
        assert main(["codecs"]) == 0
        output = capsys.readouterr().out
        assert "bpg" in output and "45" in output

    def test_roundtrip_on_synthetic_image(self, capsys):
        assert main(["roundtrip", "--codec", "jpeg", "--quality", "60",
                     "--height", "48", "--width", "64"]) == 0
        output = capsys.readouterr().out
        assert "bpp" in output and "psnr" in output

    def test_roundtrip_reads_npy_input_and_writes_output(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        image = rng.random((32, 48))
        input_path = tmp_path / "image.npy"
        output_path = tmp_path / "reconstruction.npy"
        np.save(input_path, image)
        assert main(["roundtrip", "--input", str(input_path), "--codec", "png",
                     "--output", str(output_path)]) == 0
        reconstruction = np.load(output_path)
        assert reconstruction.shape == image.shape
        assert "reconstruction written" in capsys.readouterr().out

    def test_roundtrip_missing_input_file_returns_error(self, tmp_path, capsys):
        missing = tmp_path / "missing.npy"
        assert main(["roundtrip", "--input", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_evaluate_on_cifar_subset(self, capsys):
        assert main(["evaluate", "--dataset", "cifar", "--images", "1",
                     "--codec", "jpeg", "--quality", "70"]) == 0
        output = capsys.readouterr().out
        assert "brisque" in output and "bpp" in output

    def test_experiment_fig1_prints_motivation_table(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        output = capsys.readouterr().out
        assert "cheng" in output and "transmit" in output

    def test_npz_input_is_supported(self, tmp_path, capsys):
        image = np.linspace(0, 1, 32 * 32).reshape(32, 32)
        path = tmp_path / "image.npz"
        np.savez(path, image=image)
        assert main(["roundtrip", "--input", str(path), "--codec", "png"]) == 0
        assert "bpp" in capsys.readouterr().out


class TestCompressDecompress:
    def test_base_codec_container_roundtrip(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        image = rng.random((32, 48))
        image_path = tmp_path / "frame.npy"
        container_path = tmp_path / "frame.cimg"
        output_path = tmp_path / "decoded.npy"
        np.save(image_path, image)
        assert main(["compress", "--input", str(image_path), "--codec", "png",
                     str(container_path)]) == 0
        assert container_path.exists()
        assert main(["decompress", str(container_path), str(output_path),
                     "--codec", "png"]) == 0
        decoded = np.load(output_path)
        assert decoded.shape == image.shape
        # the PNG-style codec is lossless up to 8-bit quantisation
        assert np.allclose(decoded, image, atol=0.5 / 255 + 1e-9)
        output = capsys.readouterr().out
        assert "container bytes" in output and "decoded shape" in output

    def test_easz_container_roundtrip(self, tmp_path, capsys):
        image = KodakLikeImage()
        image_path = tmp_path / "frame.npy"
        container_path = tmp_path / "frame.easz"
        output_path = tmp_path / "decoded.npy"
        np.save(image_path, image)
        common = ["--codec", "jpeg", "--quality", "80", "--easz",
                  "--patch-size", "16", "--subpatch-size", "4",
                  "--erase-ratio", "0.25", "--train-steps", "60"]
        assert main(["compress", "--input", str(image_path), str(container_path)] + common) == 0
        assert main(["decompress", str(container_path), str(output_path)] + common) == 0
        decoded = np.load(output_path)
        assert decoded.shape == image.shape
        assert 0.0 <= decoded.min() and decoded.max() <= 1.0

    def test_decompress_rejects_foreign_files(self, tmp_path, capsys):
        bad = tmp_path / "junk.easz"
        bad.write_bytes(b"not a container at all")
        assert main(["decompress", str(bad), str(tmp_path / "out.npy")]) == 2
        assert "error" in capsys.readouterr().err


def KodakLikeImage():
    """A small deterministic RGB test image (module-level helper, not a fixture)."""
    from repro.datasets import KodakDataset

    return KodakDataset(num_images=1, height=48, width=64)[0]
