"""Tests for client-side resilience (``repro.serve.resilience``) and the
end-to-end deadline-shedding path (queue → batcher → worker → shard)."""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import EaszConfig, EaszEncoder, EaszReconstructor
from repro.serve import (
    AdmissionQueue,
    CircuitBreaker,
    ClosedLoopClient,
    CompressionServer,
    DeadlineExceededError,
    MicroBatcher,
    QueueClosedError,
    ResilientClient,
    RetryBudget,
    RetryPolicy,
    ServerOverloadedError,
    ShardedCompressionServer,
    ShardFailedError,
    deadline_after_ms,
)
from repro.serve.queueing import deadline_expired, deadline_remaining_s
from repro.serve.server import PendingResult, ServeRequest
from repro.serve.worker import ServeWorker


@pytest.fixture(scope="module")
def serve_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def serve_model(serve_config):
    model = EaszReconstructor(serve_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def package(serve_config):
    rng = np.random.default_rng(3)
    encoder = EaszEncoder(serve_config, seed=0)
    return encoder.encode(rng.random((32, 32, 3)), mask=encoder.generate_mask())


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FlakyServer:
    """``submit()`` fails the first ``fail_first`` attempts, then succeeds.

    ``sync_raise`` raises from ``submit`` itself (the admission-rejection
    shape); otherwise the returned future is rejected asynchronously (the
    shard-failure shape).  ``delay_s`` delays successful resolutions.
    """

    def __init__(self, fail_first=0, error_factory=None, sync_raise=False,
                 delay_s=0.0):
        self.fail_first = fail_first
        self.error_factory = error_factory or (lambda: ShardFailedError("boom"))
        self.sync_raise = sync_raise
        self.delay_s = delay_s
        self.calls = 0
        self._lock = threading.Lock()

    def submit(self, package, kind="reconstruct", deadline_s=None):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call <= self.fail_first:
            if self.sync_raise:
                raise self.error_factory()
            pending = PendingResult(call)
            pending._reject(self.error_factory())
            return pending
        pending = PendingResult(call)
        if self.delay_s > 0:
            timer = threading.Timer(
                self.delay_s, lambda: pending._resolve(f"response-{call}"))
            timer.daemon = True
            timer.start()
        else:
            pending._resolve(f"response-{call}")
        return pending


# --------------------------------------------------------------------------- #
# retry budget + policy
# --------------------------------------------------------------------------- #
class TestRetryBudget:
    def test_withdrawals_bounded_by_burst_plus_deposits(self):
        budget = RetryBudget(ratio=0.5, burst=2.0)
        assert budget.withdraw() and budget.withdraw()  # the initial burst
        assert not budget.withdraw()                    # broke
        budget.deposit(2)                               # 2 * 0.5 = 1 token
        assert budget.withdraw()
        assert not budget.withdraw()
        snap = budget.snapshot()
        assert snap["withdrawn"] == 3
        assert snap["denied"] == 2
        assert snap["deposited"] == 2

    def test_tokens_cap_at_burst(self):
        budget = RetryBudget(ratio=1.0, burst=3.0)
        budget.deposit(100)
        assert budget.snapshot()["tokens"] == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="ratio"):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError, match="burst"):
            RetryBudget(burst=0.5)


class TestRetryPolicy:
    def test_infra_errors_retry_verdicts_do_not(self):
        policy = RetryPolicy()
        assert policy.retryable(ShardFailedError("x"))
        assert policy.retryable(ServerOverloadedError("x"))
        assert policy.retryable(TimeoutError("x"))
        assert not policy.retryable(DeadlineExceededError("x"))
        assert not policy.retryable(QueueClosedError("x"))
        assert not policy.retryable(ValueError("corrupt payload"))

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=0.05,
                             jitter="none")
        values = [policy.backoff_s(k, rng=None) for k in (1, 2, 3, 4, 5)]
        assert values == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_full_jitter_stays_inside_the_envelope(self):
        import random
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=0.05)
        rng = random.Random(0)
        for attempt in range(1, 6):
            cap = min(0.01 * 2 ** (attempt - 1), 0.05)
            for _ in range(20):
                assert 0.0 <= policy.backoff_s(attempt, rng) <= cap

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="max_backoff_s"):
            RetryPolicy(base_backoff_s=0.5, max_backoff_s=0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter="decorrelated")
        with pytest.raises(ValueError, match="budget"):
            RetryPolicy(budget=0.1)


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(failure_threshold=0.5, ewma_alpha=0.5, min_samples=3,
                        open_duration_s=1.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_opens_only_after_min_samples_of_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below min_samples
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_successes_hold_the_breaker_closed(self):
        clock = FakeClock()
        breaker = self._breaker(clock, ewma_alpha=0.1)
        # a 1-in-3 failure rate peaks the EWMA near 0.37, safely under the
        # 0.5 threshold — mixed traffic must not open the breaker
        for _ in range(50):
            breaker.record_failure()
            breaker.record_success()
            breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.snapshot()["failure_ewma"] < 0.5

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()          # the single half-open probe
        assert not breaker.allow()      # second concurrent probe refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.snapshot()["failure_ewma"] == 0.0

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()      # open timer restarted
        clock.advance(1.5)
        assert breaker.allow()

    def test_trip_and_reset(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["failure_ewma"] == 1.0
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.snapshot()["opened_total"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError, match="open_duration_s"):
            CircuitBreaker(open_duration_s=0.0)
        with pytest.raises(ValueError, match="half_open_probes"):
            CircuitBreaker(half_open_probes=0)


# --------------------------------------------------------------------------- #
# resilient client (against a fake server: pure client-side semantics)
# --------------------------------------------------------------------------- #
class TestResilientClient:
    def _policy(self, **kwargs):
        defaults = dict(max_attempts=3, base_backoff_s=0.001,
                        max_backoff_s=0.002)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_healthy_submit_passes_through(self):
        server = FlakyServer()
        client = ResilientClient(server, retry_policy=self._policy())
        assert client.submit("pkg").result(timeout=1.0) == "response-1"
        stats = client.stats()
        assert stats["submitted"] == 1 and stats["retries"] == 0
        assert server.calls == 1

    def test_async_failure_retries_then_succeeds(self):
        server = FlakyServer(fail_first=2)
        client = ResilientClient(server, retry_policy=self._policy())
        assert client.submit("pkg").result(timeout=2.0) == "response-3"
        stats = client.stats()
        assert stats["retries"] == 2
        assert stats["retry_successes"] == 1
        assert stats["failures"] == 0

    def test_sync_rejection_enters_the_retry_path(self):
        server = FlakyServer(fail_first=1, sync_raise=True,
                             error_factory=lambda: ServerOverloadedError("full"))
        client = ResilientClient(server, retry_policy=self._policy())
        assert client.submit("pkg").result(timeout=2.0) == "response-2"
        assert client.stats()["retries"] == 1

    def test_permanent_error_never_retries(self):
        server = FlakyServer(fail_first=5,
                             error_factory=lambda: ValueError("corrupt"))
        client = ResilientClient(server, retry_policy=self._policy())
        with pytest.raises(ValueError):
            client.submit("pkg").result(timeout=1.0)
        assert server.calls == 1
        assert client.stats()["failures"] == 1

    def test_attempt_cap_surfaces_the_last_error(self):
        server = FlakyServer(fail_first=10)
        client = ResilientClient(server,
                                 retry_policy=self._policy(max_attempts=2))
        with pytest.raises(ShardFailedError):
            client.submit("pkg").result(timeout=2.0)
        assert server.calls == 2
        stats = client.stats()
        assert stats["retries"] == 1 and stats["failures"] == 1

    def test_broke_budget_denies_the_retry(self):
        budget = RetryBudget(ratio=0.0, burst=1.0)
        server = FlakyServer(fail_first=10)
        client = ResilientClient(
            server, retry_policy=self._policy(max_attempts=4, budget=budget))
        with pytest.raises(ShardFailedError):
            client.submit("pkg").result(timeout=2.0)
        # one token of burst bought one retry; the second was denied
        assert server.calls == 2
        stats = client.stats()
        assert stats["retries"] == 1 and stats["budget_denied"] == 1

    def test_expired_deadline_stops_retrying(self):
        server = FlakyServer(fail_first=10)
        client = ResilientClient(server, retry_policy=self._policy())
        pending = client.submit("pkg", deadline_s=time.monotonic() - 1.0)
        with pytest.raises(ShardFailedError):
            pending.result(timeout=1.0)
        assert server.calls == 1  # retrying past the deadline is pure waste

    def test_hedge_wins_and_loser_is_absorbed(self):
        # first attempt resolves slowly; the hedge (second call) is instant
        server = FlakyServer(delay_s=0.4)
        original_submit = server.submit
        def submit(package, kind="reconstruct", deadline_s=None):
            if server.calls >= 1:
                server.delay_s = 0.0
            return original_submit(package, kind=kind, deadline_s=deadline_s)
        server.submit = submit
        client = ResilientClient(server, retry_policy=self._policy(),
                                 hedge_after_ms=30.0)
        resolutions = []
        pending = client.submit("pkg")
        pending.add_done_callback(lambda p: resolutions.append(p))
        assert pending.result(timeout=2.0) == "response-2"
        stats = client.stats()
        assert stats["hedges"] == 1 and stats["hedge_wins"] == 1
        time.sleep(0.6)  # let the slow original resolve and be absorbed
        assert len(resolutions) == 1
        assert server.calls == 2

    def test_hedge_draws_from_the_budget(self):
        budget = RetryBudget(ratio=0.0, burst=1.0)
        assert budget.withdraw()  # drain it: the hedge must be refused
        server = FlakyServer(delay_s=0.2)
        client = ResilientClient(
            server, retry_policy=self._policy(budget=budget),
            hedge_after_ms=20.0)
        assert client.submit("pkg").result(timeout=2.0) == "response-1"
        stats = client.stats()
        assert stats["hedges"] == 0 and stats["budget_denied"] == 1
        assert server.calls == 1

    def test_p95_hedging_needs_samples_first(self):
        server = FlakyServer()
        client = ResilientClient(server, retry_policy=self._policy(),
                                 hedge_after_ms="p95", min_hedge_samples=4)
        for _ in range(3):
            client.submit("pkg").result(timeout=1.0)
        assert client.stats()["hedges"] == 0  # too little signal to hedge
        assert client._hedge_delay_s() is None
        client.submit("pkg").result(timeout=1.0)
        assert client._hedge_delay_s() is not None

    def test_close_cancels_scheduled_retries(self):
        server = FlakyServer(fail_first=10)
        client = ResilientClient(
            server, retry_policy=self._policy(base_backoff_s=5.0,
                                              max_backoff_s=5.0))
        client.submit("pkg")
        time.sleep(0.05)  # the first failure schedules a far-future retry
        client.close()
        calls_at_close = server.calls
        time.sleep(0.05)
        assert server.calls == calls_at_close == 1


class TestClosedLoopClient:
    def test_think_loop_counts_and_stops(self):
        stop = threading.Event()
        def do_request(client):
            if client.requests >= 5:
                stop.set()
            return True
        client = ClosedLoopClient(do_request, think_time_s=0.001,
                                  stop_event=stop)
        client.start()
        client.join(timeout=5.0)
        assert not client.is_alive()
        assert client.requests >= 5
        assert client.accepted == client.requests
        assert client.backoffs == 0

    def test_rejections_back_off_exponentially(self):
        stop = threading.Event()
        waits = []
        def do_request(client):
            waits.append(time.monotonic())
            if len(waits) >= 3:
                stop.set()
            return False
        client = ClosedLoopClient(do_request, think_time_s=0.0,
                                  backoff_base_s=0.02, backoff_cap_s=0.1,
                                  stop_event=stop)
        client.start()
        client.join(timeout=5.0)
        assert client.accepted == 0 and client.backoffs >= 2
        # second gap (backoff 0.04) must exceed the first (backoff 0.02)
        gaps = np.diff(waits)
        assert gaps[1] > gaps[0]

    def test_do_request_exception_is_a_rejection(self):
        stop = threading.Event()
        def do_request(client):
            stop.set()
            raise RuntimeError("client bug")
        client = ClosedLoopClient(do_request, think_time_s=0.0,
                                  backoff_base_s=0.001, stop_event=stop)
        client.start()
        client.join(timeout=5.0)
        assert client.backoffs >= 1
        assert client.accepted == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="think_time_s"):
            ClosedLoopClient(lambda c: True, think_time_s=-1.0)
        with pytest.raises(ValueError, match="backoff_cap_s"):
            ClosedLoopClient(lambda c: True, backoff_base_s=1.0,
                             backoff_cap_s=0.5)


# --------------------------------------------------------------------------- #
# deadline helpers
# --------------------------------------------------------------------------- #
class TestDeadlineHelpers:
    def test_absolute_stamp_arithmetic(self):
        clock = FakeClock(100.0)
        deadline = deadline_after_ms(250.0, clock=clock)
        assert deadline == pytest.approx(100.25)
        assert not deadline_expired(deadline, clock)
        assert deadline_remaining_s(deadline, clock) == pytest.approx(0.25)
        clock.advance(0.5)
        assert deadline_expired(deadline, clock)
        assert deadline_remaining_s(deadline, clock) == 0.0

    def test_none_means_no_deadline(self):
        assert not deadline_expired(None)
        assert deadline_remaining_s(None) == float("inf")


# --------------------------------------------------------------------------- #
# deadline shedding at each pipeline stage (the four edge cases)
# --------------------------------------------------------------------------- #
class TestDeadlineShedding:
    def test_expired_at_submit_is_shed_before_the_queue(self, serve_model,
                                                        serve_config, package):
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1) as server:
            resolutions = []
            pending = server.submit(package,
                                    deadline_s=time.monotonic() - 0.1)
            pending.add_done_callback(lambda p: resolutions.append(p))
            with pytest.raises(DeadlineExceededError):
                pending.result(timeout=1.0)
            assert server.stats.snapshot()["deadline_shed"] == 1
        assert len(resolutions) == 1  # rejected exactly once

    def test_expired_while_queued_is_shed_by_the_batcher(self):
        queue = AdmissionQueue(max_depth=8)
        shed = []
        batcher = MicroBatcher(queue, key_fn=lambda r: "k",
                               on_expired=shed.append)
        now = time.monotonic()
        def request(request_id, deadline_s):
            return ServeRequest(request_id=request_id, package=None,
                                kind="reconstruct", submitted_at=now,
                                pending=PendingResult(request_id),
                                deadline_s=deadline_s)
        expired_first = request(0, now - 0.1)     # sheds in the first-pop loop
        live = request(1, now + 60.0)
        expired_queued = request(2, now - 0.1)    # sheds in take_matching
        for item in (expired_first, live, expired_queued):
            queue.put(item)
        batch = batcher.next_batch(timeout=0.1)
        assert [r.request_id for r in batch] == [1]
        assert {r.request_id for r in shed} == {0, 2}
        assert queue.depth == 0

    def test_expired_mid_batch_is_shed_before_decode(self, serve_model,
                                                     serve_config, package):
        with CompressionServer(model=serve_model, config=serve_config,
                               num_workers=1) as server:
            worker = ServeWorker(server, index=99)  # never started: driven by hand
            expired = ServeRequest(request_id=7, package=package,
                                   kind="reconstruct",
                                   submitted_at=time.monotonic(),
                                   pending=PendingResult(7),
                                   deadline_s=time.monotonic() - 0.1)
            worker._process_batch([expired])
            assert worker.batches_processed == 0  # no decode was paid for
            with pytest.raises(DeadlineExceededError):
                expired.pending.result(timeout=0)
            assert server.stats.snapshot()["deadline_shed"] == 1

    def test_expired_on_a_shard_is_shed_before_unpack(self, serve_model,
                                                      serve_config, package):
        # freeze the only shard so the request's 100ms budget expires on the
        # wire; after thaw the shard must shed it pre-unpack and report the
        # shed through the merged telemetry
        with ShardedCompressionServer(model=serve_model, config=serve_config,
                                      num_shards=1, workers_per_shard=1,
                                      use_shm=False) as server:
            warm = server.submit(package)
            warm.result(timeout=60.0)  # shard is up and serving
            pid = server._shards[0].process.pid
            os.kill(pid, signal.SIGSTOP)
            try:
                pending = server.submit(package,
                                        deadline_s=deadline_after_ms(100.0))
                time.sleep(0.3)
            finally:
                os.kill(pid, signal.SIGCONT)
            with pytest.raises(DeadlineExceededError):
                pending.result(timeout=30.0)
            assert server.stats.snapshot()["deadline_shed"] >= 1


# --------------------------------------------------------------------------- #
# sharded-server integration: breakers in the router, depth prediction
# --------------------------------------------------------------------------- #
class TestShardedResilienceIntegration:
    def test_snapshot_reports_per_shard_breakers(self, serve_model,
                                                 serve_config, package):
        with ShardedCompressionServer(model=serve_model, config=serve_config,
                                      num_shards=2, workers_per_shard=1,
                                      use_shm=False) as server:
            server.submit(package).result(timeout=60.0)
            breakers = server.stats.snapshot()["circuit_breakers"]
            assert len(breakers) == 2
            assert all(b["state"] == "closed" for b in breakers)

            index, depth = server.predicted_shard_depth(package)
            assert index in (0, 1)
            assert depth >= 0

            # an open breaker must not make the pool refuse work: traffic
            # spills to the trusted shard and still completes
            server._breakers[0].trip()
            server._breakers[1].trip()  # all-open degrades to breaker-blind
            assert server.submit(package).result(timeout=60.0) is not None

    def test_breakers_can_be_disabled(self, serve_model, serve_config,
                                      package):
        with ShardedCompressionServer(model=serve_model, config=serve_config,
                                      num_shards=1, workers_per_shard=1,
                                      use_shm=False,
                                      circuit_breakers=False) as server:
            server.submit(package).result(timeout=60.0)
            assert server.stats.snapshot()["circuit_breakers"] == {
                "enabled": False}
