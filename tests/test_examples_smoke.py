"""Smoke tests for the example scripts.

Every example must at least expose a ``main()`` entry point and import
cleanly; a representative subset (the ones that finish in seconds once the
model cache is warm) is executed end-to-end as a subprocess so regressions in
the public API surface show up here rather than when a user runs the script.
"""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
_ALL_EXAMPLES = sorted(path.name for path in _EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough (cached model, small images) to execute in the test suite.
_RUNNABLE = ["quickstart.py", "adaptive_bitrate.py", "streaming_surveillance.py",
             "serving_gateway.py"]


def _load_module(name):
    path = _EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleStructure:
    def test_expected_examples_are_present(self):
        expected = {
            "quickstart.py",
            "adaptive_bitrate.py",
            "industrial_inspection.py",
            "wildlife_monitoring.py",
            "autonomous_driving.py",
            "fleet_congestion.py",
            "streaming_surveillance.py",
            "serving_gateway.py",
            "sharded_gateway.py",
        }
        assert expected.issubset(set(_ALL_EXAMPLES))

    @pytest.mark.parametrize("name", _ALL_EXAMPLES)
    def test_every_example_imports_and_has_main(self, name):
        module = _load_module(name)
        assert callable(getattr(module, "main", None)), f"{name} has no main()"
        assert module.__doc__, f"{name} has no module docstring"


class TestExampleExecution:
    @pytest.mark.parametrize("name", _RUNNABLE)
    def test_example_runs_end_to_end(self, name):
        completed = subprocess.run(
            [sys.executable, str(_EXAMPLES_DIR / name)],
            capture_output=True, text=True, timeout=240,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip(), f"{name} produced no output"
