"""Fig. 8 — end-to-end compression performance.

* 8a–8c — rate/perception curves (BRISQUE, PI, TReS vs BPP) for JPEG,
  JPEG+Easz, MBT and Cheng-anchor on the Kodak-like set;
* 8d — end-to-end latency vs BPP on the simulated TX2 → server testbed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import ChengCodec, JpegCodec, MbtCodec
from repro.experiments import (
    Series,
    evaluate_codec_on_dataset,
    format_series_table,
    format_table,
)

_JPEG_QUALITIES = (20, 45, 75, 90)
_NEURAL_QUALITIES = (2, 4, 5, 6)


def _fig8_sweeps(dataset, easz_codec_factory, max_images=1):
    families = {
        "jpeg": [JpegCodec(quality=q) for q in _JPEG_QUALITIES],
        "jpeg+easz": [easz_codec_factory(quality=q) for q in _JPEG_QUALITIES],
        "mbt": [MbtCodec(quality=q) for q in _NEURAL_QUALITIES],
        "cheng": [ChengCodec(quality=q) for q in _NEURAL_QUALITIES],
    }
    sweeps = {}
    for label, codecs in families.items():
        evaluations = [evaluate_codec_on_dataset(codec, dataset, max_images=max_images,
                                                 no_reference=("brisque", "pi", "tres"),
                                                 full_reference=())
                       for codec in codecs]
        sweeps[label] = sorted(evaluations, key=lambda e: e.bpp)
    return sweeps


@pytest.mark.benchmark(group="fig8")
def test_fig8abc_rate_perception_curves(benchmark, kodak, easz_codec_factory):
    sweeps = benchmark.pedantic(_fig8_sweeps, args=(kodak, easz_codec_factory),
                                rounds=1, iterations=1)
    print()
    for metric, better in (("brisque", "lower"), ("pi", "lower"), ("tres", "higher")):
        series = [Series(label, [round(e.bpp, 3) for e in evals],
                         [round(e.scores[metric], 2) for e in evals])
                  for label, evals in sweeps.items()]
        print(format_series_table(series, x_label="bpp", y_label=metric,
                                  title=f"Fig. 8 — {metric} vs BPP ({better} is better)"))
        print()

    jpeg = sweeps["jpeg"]
    easz = sweeps["jpeg+easz"]
    # +Easz shifts the JPEG curve left: at every shared quality setting the
    # BPP is lower than plain JPEG
    for plain, enhanced in zip(jpeg, easz):
        assert enhanced.bpp < plain.bpp
    # all four families produce monotone BPP sweeps with finite scores
    for label, evals in sweeps.items():
        bpps = [e.bpp for e in evals]
        assert bpps == sorted(bpps)
        assert all(np.isfinite(list(e.scores.values())).all() for e in evals), label


def _fig8d_rows(testbed, easz_codec_factory, shape):
    rows = []
    for label, codec_factory, qualities in (
        ("jpeg+easz", easz_codec_factory, _JPEG_QUALITIES),
        ("mbt", lambda q: MbtCodec(quality=q), _NEURAL_QUALITIES),
        ("cheng", lambda q: ChengCodec(quality=q), _NEURAL_QUALITIES),
    ):
        for quality in qualities:
            codec = codec_factory(quality)
            bpp = 0.15 + 0.12 * qualities.index(quality)  # representative payload sizes
            payload_bytes = int(bpp * shape[0] * shape[1] / 8)
            report = testbed.run(codec, shape=shape, payload_bytes=payload_bytes,
                                 include_load=False)
            rows.append([label, round(report.bpp, 3), round(report.timing.total_ms, 1)])
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8d_latency_vs_bitrate(benchmark, testbed, easz_codec_factory, paper_image_shape):
    rows = benchmark.pedantic(_fig8d_rows, args=(testbed, easz_codec_factory, paper_image_shape),
                              rounds=1, iterations=1)
    print()
    print(format_table(["codec", "bpp", "end_to_end_ms"], rows,
                       title="Fig. 8d — end-to-end latency vs bitrate (simulated testbed)"))
    easz_latency = np.mean([row[2] for row in rows if row[0] == "jpeg+easz"])
    mbt_latency = np.mean([row[2] for row in rows if row[0] == "mbt"])
    cheng_latency = np.mean([row[2] for row in rows if row[0] == "cheng"])
    reduction_vs_mbt = 1 - easz_latency / mbt_latency
    reduction_vs_cheng = 1 - easz_latency / cheng_latency
    print()
    print(f"average Easz end-to-end latency: {easz_latency:.0f} ms "
          f"(paper: 2568 ms on the physical testbed)")
    print(f"latency reduction vs MBT: {100 * reduction_vs_mbt:.1f}%, "
          f"vs Cheng: {100 * reduction_vs_cheng:.1f}% (paper: ~89%)")
    assert reduction_vs_mbt > 0.7
    assert reduction_vs_cheng > 0.7
