"""Compare a freshly recorded ``BENCH_throughput.json`` against a baseline.

CI runs the throughput benchmark on every PR; raw timings are too noisy to
gate on, so this script fails **only on guarded-bar regressions** — the
same speedup floors ``tests/test_perf_smoke.py`` enforces on the recorded
numbers, checked on the fresh JSON, plus "a section the baseline had went
missing".  Sections the baseline skipped (e.g. sharded/shm on a 1-CPU dev
box) are only required when the fresh run recorded them.

Usage::

    python benchmarks/diff_bench.py BASELINE.json FRESH.json
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

#: (json path, guarded floor) — mirror tests/test_perf_smoke.py.
GUARDED_BARS = (
    (("roundtrip_512_rgb", "speedup"), 5.0),
    (("entropy", "speedup"), 3.0),
    (("dct", "speedup"), 1.5),
    (("serving", "batches", "4", "speedup_vs_sequential"), 1.5),
    (("serving", "sharded", "speedup_vs_threaded"), 1.3),
    (("serving", "shm", "speedup_vs_queue"), 1.15),
)

#: Bars that sit right at the measured value flap on run-to-run noise; this
#: advisory gate tolerates a small shortfall (the tier-1 guards stay strict).
NOISE_MARGIN = 0.95


def _lookup(report, path):
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def _skipped(report, path):
    """True when any enclosing section carries a ``skipped`` marker."""
    node = report
    for key in path[:-1]:
        if not isinstance(node, dict):
            return False
        node = node.get(key, {})
        if isinstance(node, dict) and "skipped" in node:
            return True
    return False


def diff(baseline, fresh):
    """Return a list of human-readable regression strings (empty = pass)."""
    failures = []
    for path, bar in GUARDED_BARS:
        label = ".".join(path)
        fresh_value = _lookup(fresh, path)
        if fresh_value is None:
            if _skipped(fresh, path):
                continue  # the fresh host cannot measure this bar
            if _lookup(baseline, path) is None:
                continue  # neither run records it; nothing regressed
            failures.append(f"{label}: recorded in the baseline but missing "
                            "from the fresh run")
            continue
        if fresh_value < bar * NOISE_MARGIN:
            failures.append(f"{label}: {fresh_value:.3f} is below the guarded "
                            f"bar {bar} (baseline "
                            f"{_lookup(baseline, path) or float('nan'):.3f})")
    return failures


def summary_table(baseline, fresh):
    """Markdown table of every guarded bar for the CI step summary."""
    lines = ["### Guarded perf bars", "",
             "| bar | floor | baseline | fresh | status |",
             "|---|---|---|---|---|"]
    for path, bar in GUARDED_BARS:
        label = ".".join(path)
        base_value = _lookup(baseline, path)
        fresh_value = _lookup(fresh, path)
        base_cell = f"{base_value:.3f}" if isinstance(base_value, (int, float)) else "—"
        if fresh_value is None:
            fresh_cell = "—"
            status = ("skipped" if _skipped(fresh, path)
                      else "ok" if base_value is None else "**missing**")
        else:
            fresh_cell = f"{fresh_value:.3f}"
            status = "ok" if fresh_value >= bar * NOISE_MARGIN else "**regressed**"
        lines.append(f"| {label} | {bar} | {base_cell} | {fresh_cell} | {status} |")
    return "\n".join(lines) + "\n"


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = json.loads(Path(argv[1]).read_text())
    fresh = json.loads(Path(argv[2]).read_text())
    failures = diff(baseline, fresh)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(summary_table(baseline, fresh))
    if failures:
        print("guarded-bar regressions:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("no guarded-bar regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
