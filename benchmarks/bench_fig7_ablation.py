"""Fig. 7 — ablation studies.

* 7a/7b — the full pipeline with the proposed mask vs the random mask vs the
  raw codec (JPEG and BPG), scored by BRISQUE against BPP;
* 7c — sub-patch size (erase-block size) and erase ratio vs reconstruction
  MSE and inference time;
* 7d — fine-tuning the pre-trained model on the evaluation dataset lowers the
  training loss.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.codecs import BpgCodec, JpegCodec
from repro.core import (
    EaszConfig,
    EaszTrainer,
    erase_and_squeeze_image,
    proposed_mask,
    reconstruct_image,
    unsqueeze_image,
)
from repro.experiments import Series, format_series_table, format_table, pretrained_model
from repro.metrics import brisque, mse


# --------------------------------------------------------------------------- #
# Fig. 7a / 7b — mask strategy through the full pipeline
# --------------------------------------------------------------------------- #
def _fig7ab_rows(image, easz_codec_factory, base_name):
    if base_name == "jpeg":
        qualities = (30, 60, 85)

        def make_base(quality):
            return JpegCodec(quality=quality)
    else:
        qualities = (40, 34, 28)

        def make_base(quality):
            return BpgCodec(qp=quality)
    rows = []
    for quality in qualities:
        base = make_base(quality)
        plain_rec, plain_comp = base.roundtrip(image)
        rows.append([base.name, "none", round(plain_comp.bpp(), 3),
                     round(brisque(plain_rec), 1)])
        for strategy in ("proposed", "random"):
            codec = easz_codec_factory(base_codec=make_base(quality), mask_strategy=strategy)
            reconstruction, compressed = codec.roundtrip(image)
            rows.append([base.name, strategy, round(compressed.bpp(), 3),
                         round(brisque(reconstruction), 1)])
    return rows


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("base_name", ["jpeg", "bpg"])
def test_fig7ab_mask_strategy_through_pipeline(benchmark, base_name, kodak, easz_codec_factory):
    image = kodak[0]
    rows = benchmark.pedantic(_fig7ab_rows, args=(image, easz_codec_factory, base_name),
                              rounds=1, iterations=1)
    figure = "Fig. 7a" if base_name == "jpeg" else "Fig. 7b"
    print()
    print(format_table(["base", "easz mask", "bpp", "brisque"], rows,
                       title=f"{figure} — {base_name.upper()} / +Easz(proposed) / +Easz(random)"))
    # +Easz reduces BPP relative to the raw codec at every quality setting
    plain = [row for row in rows if row[1] == "none"]
    proposed_rows = [row for row in rows if row[1] == "proposed"]
    for plain_row, easz_row in zip(plain, proposed_rows):
        assert easz_row[2] < plain_row[2]
    # scores stay in the metric's range
    assert all(0 <= row[3] <= 100 for row in rows)


# --------------------------------------------------------------------------- #
# Fig. 7c — sub-patch size and erase ratio
# --------------------------------------------------------------------------- #
def _fig7c_rows(image, d_model):
    rows = []
    for subpatch in (2, 4, 8):
        config = EaszConfig(patch_size=16, subpatch_size=subpatch,
                            erase_per_row=1, d_model=d_model, num_heads=4,
                            encoder_blocks=2, decoder_blocks=2, ffn_mult=2,
                            loss_lambda=0.0)
        model = pretrained_model(config, steps=200, batch_size=16, dataset_images=256)
        for erase_per_row in range(1, min(config.grid_size, 4)):
            mask = proposed_mask(config.grid_size, erase_per_row,
                                 intra_row_min_distance=0, seed=0)
            squeezed, grid, _ = erase_and_squeeze_image(image, mask, config.patch_size,
                                                        config.subpatch_size)
            filled = unsqueeze_image(squeezed, mask, config.patch_size,
                                     config.subpatch_size, grid, image.shape, fill="zero")
            start = time.perf_counter()
            reconstruction = reconstruct_image(model, filled, mask)
            elapsed = time.perf_counter() - start
            rows.append([subpatch, round(erase_per_row / config.grid_size, 3),
                         round(elapsed, 3), round(mse(image, reconstruction), 5)])
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7c_patch_size_and_erase_ratio(benchmark, kodak):
    image = kodak[0][..., 0]
    rows = benchmark.pedantic(_fig7c_rows, args=(image, 32), rounds=1, iterations=1)
    print()
    print(format_table(["erase_block_b", "erase_ratio", "infer_time_s", "mse"], rows,
                       title="Fig. 7c — erase-block size / erase ratio vs MSE and inference time"))
    # MSE rises with the erase ratio for a fixed block size
    for subpatch in (2, 4):
        curve = [row for row in rows if row[0] == subpatch]
        if len(curve) >= 2:
            assert curve[-1][3] > curve[0][3]
    # larger erase blocks are faster to reconstruct (fewer tokens per patch)
    time_b2 = np.mean([row[2] for row in rows if row[0] == 2])
    time_b8 = np.mean([row[2] for row in rows if row[0] == 8])
    assert time_b8 < time_b2
    # smaller erase blocks reconstruct more accurately at the shared 25% ratio
    mse_b2 = [row[3] for row in rows if row[0] == 2 and row[1] == 0.125]
    mse_b8 = [row[3] for row in rows if row[0] == 8 and row[1] == 0.5]
    assert rows[0][3] < rows[-1][3] or (mse_b2 and mse_b8 and mse_b2[0] < mse_b8[0])


# --------------------------------------------------------------------------- #
# Fig. 7d — fine-tuning on the evaluation dataset
# --------------------------------------------------------------------------- #
def _fig7d_curves(kodak, bench_config):
    curves = {}
    for subpatch in (2, 4):
        config = EaszConfig(**{**bench_config.__dict__, "subpatch_size": subpatch})
        model = pretrained_model(config, steps=200, batch_size=16, dataset_images=256)
        trainer = EaszTrainer(model=model, config=config, use_perceptual_loss=False)
        result = trainer.finetune(kodak, steps=25, batch_size=8)
        curves[subpatch] = result.losses
    return curves


@pytest.mark.benchmark(group="fig7")
def test_fig7d_finetuning_reduces_loss(benchmark, kodak, bench_config):
    curves = benchmark.pedantic(_fig7d_curves, args=(kodak, bench_config), rounds=1, iterations=1)
    print()
    print(format_series_table(
        [Series(f"erase block b={subpatch}", list(range(len(losses))), losses)
         for subpatch, losses in curves.items()],
        x_label="fine-tune step", y_label="loss",
        title="Fig. 7d — fine-tuning loss on the Kodak-like dataset"))
    for subpatch, losses in curves.items():
        assert np.mean(losses[-5:]) <= np.mean(losses[:5]) * 1.05, subpatch
