"""Ablations for the agility extensions (DESIGN.md §4, beyond the paper's figures).

* rate control — accuracy of the erase-ratio bitrate controller against a BPP
  target, and the number of encoder probes it needs;
* mask transport — size of the three erase-mask wire formats (bit-packed /
  RLE / sampler-seed), quantifying the paper's "only 128 bytes" remark;
* ROI allocation — saliency-guided per-patch erase levels vs a uniform mask
  at a matched average erase ratio;
* squeeze direction — horizontal vs vertical packing (the paper notes both
  are viable and "may slightly influence the subsequent compression");
* BD-rate — Bjøntegaard summary of what wrapping JPEG in Easz does to the
  rate/PSNR curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import (
    BitrateController,
    EaszCodec,
    MaskSpec,
    encode_mask,
    erase_and_squeeze_image,
    proposed_mask,
    saliency_map,
    allocate_erase_levels,
    RoiEaszCodec,
)
from repro.experiments import format_table
from repro.metrics import RateQualityCurve, bd_quality, bd_rate, psnr

pytestmark = pytest.mark.benchmark(group="ablation-adaptive")


# --------------------------------------------------------------------------- #
# rate control accuracy
# --------------------------------------------------------------------------- #
def _rate_control_rows(image, config):
    controller = BitrateController(config, JpegCodec(quality=80))
    rows = []
    for target in (1.6, 1.2, 0.9, 0.6):
        result = controller.select(image, target_bpp=target)
        rows.append([target, result.erase_per_row, round(result.achieved_bpp, 3),
                     "yes" if result.met_target else "no", result.evaluations])
    return rows


def test_ablation_rate_control(benchmark, kodak, bench_config):
    image = kodak[0]
    rows = benchmark.pedantic(_rate_control_rows, args=(image, bench_config),
                              rounds=1, iterations=1)
    print()
    print(format_table(["target_bpp", "erase_per_row", "achieved_bpp", "met", "probes"], rows,
                       title="Ablation — erase-ratio rate control (JPEG q80 base)"))
    achieved = [row[2] for row in rows]
    # tighter targets force more erasure, never the other way round
    erase_levels = [row[1] for row in rows]
    assert erase_levels == sorted(erase_levels)
    # every reachable target is met
    reachable = [row for row in rows if row[3] == "yes"]
    assert all(row[2] <= row[0] + 1e-9 for row in reachable)
    assert len(achieved) == 4


# --------------------------------------------------------------------------- #
# mask transport formats
# --------------------------------------------------------------------------- #
def _mask_transport_rows():
    rows = []
    for grid in (8, 16, 32):
        erase = grid // 4
        spec = MaskSpec(grid_size=grid, erase_per_row=erase, seed=7)
        mask = spec.generate()
        bitpack = len(encode_mask(mask, method="bitpack"))
        rle = len(encode_mask(mask, method="rle"))
        seed = len(encode_mask(mask, spec=spec, method="seed"))
        rows.append([f"{grid}x{grid}", bitpack, rle, seed])
    return rows


def test_ablation_mask_transport(benchmark):
    rows = benchmark.pedantic(_mask_transport_rows, rounds=1, iterations=1)
    print()
    print(format_table(["mask grid", "bitpack (bytes)", "rle (bytes)", "seed spec (bytes)"], rows,
                       title="Ablation — erase-mask transmission cost"))
    by_grid = {row[0]: row for row in rows}
    # the paper's figure: a 32x32 mask fits in ~128 bytes bit-packed
    assert by_grid["32x32"][1] <= 128 + 8
    # the sampler-seed format is constant-size and at least an order smaller at 32x32
    assert all(row[3] == 10 for row in rows)
    assert by_grid["32x32"][3] * 10 <= by_grid["32x32"][1]


# --------------------------------------------------------------------------- #
# ROI allocation vs uniform erasure
# --------------------------------------------------------------------------- #
def _roi_rows(image, config, model):
    target_ratio = 0.25
    uniform = EaszCodec(config=config, base_codec=JpegCodec(quality=80), model=model, seed=0)
    roi = RoiEaszCodec(config=config, base_codec=JpegCodec(quality=80), model=model,
                       target_ratio=target_ratio, seed=0)
    saliency = saliency_map(image, config.patch_size)
    levels = allocate_erase_levels(saliency, config, target_ratio=target_ratio)
    rows = []
    for label, codec in (("uniform mask", uniform), ("roi-allocated", roi)):
        reconstruction, compressed = codec.roundtrip(image)
        rows.append([label, round(compressed.bpp(), 3), round(psnr(image, reconstruction), 2)])
    rows.append(["roi level spread", float(levels.min()), float(levels.max())])
    return rows


def test_ablation_roi_allocation(benchmark, kodak, bench_config, easz_model):
    image = kodak[1]
    rows = benchmark.pedantic(_roi_rows, args=(image, bench_config, easz_model),
                              rounds=1, iterations=1)
    print()
    print(format_table(["configuration", "bpp / min level", "psnr / max level"], rows,
                       title="Ablation — saliency-guided (ROI) vs uniform erase allocation"))
    spread = rows[-1]
    # the allocator actually differentiates patches (otherwise ROI = uniform)
    assert spread[2] > spread[1]
    # both pipelines produce sane reconstructions
    assert rows[0][2] > 20.0 and rows[1][2] > 20.0


# --------------------------------------------------------------------------- #
# squeeze direction
# --------------------------------------------------------------------------- #
def _direction_rows(image, config):
    mask = proposed_mask(config.grid_size, config.erase_per_row, seed=0)
    codec = JpegCodec(quality=80)
    rows = []
    for direction in ("horizontal", "vertical"):
        squeeze_mask = mask if direction == "horizontal" else mask.T
        squeezed, _, _ = erase_and_squeeze_image(image, squeeze_mask, config.patch_size,
                                                 config.subpatch_size, direction=direction)
        compressed = codec.compress(squeezed)
        rows.append([direction, squeezed.shape[0], squeezed.shape[1],
                     round(8.0 * compressed.num_bytes / (image.shape[0] * image.shape[1]), 3)])
    return rows


def test_ablation_squeeze_direction(benchmark, kodak, bench_config):
    image = kodak[2][..., 0]
    rows = benchmark.pedantic(_direction_rows, args=(image, bench_config),
                              rounds=1, iterations=1)
    print()
    print(format_table(["direction", "squeezed_h", "squeezed_w", "bpp (JPEG q80)"], rows,
                       title="Ablation — horizontal vs vertical squeeze"))
    horizontal, vertical = rows
    # both directions remove the same pixel count; rates stay within ~15%
    assert horizontal[1] * horizontal[2] == vertical[1] * vertical[2]
    assert abs(horizontal[3] - vertical[3]) / max(horizontal[3], vertical[3]) < 0.15


# --------------------------------------------------------------------------- #
# BD-rate summary of JPEG vs JPEG+Easz
# --------------------------------------------------------------------------- #
def _bd_curves(image, config, model):
    qualities = (30, 50, 70, 85, 92)
    jpeg_curve = RateQualityCurve("jpeg", metric="psnr")
    easz_curve = RateQualityCurve("jpeg+easz", metric="psnr")
    for quality in qualities:
        base = JpegCodec(quality=quality)
        reconstruction, compressed = base.roundtrip(image)
        jpeg_curve.add(compressed.bpp(), psnr(image, reconstruction))
        easz = EaszCodec(config=config, base_codec=JpegCodec(quality=quality), model=model,
                         seed=0)
        reconstruction, compressed = easz.roundtrip(image)
        easz_curve.add(compressed.bpp(), psnr(image, reconstruction))
    return jpeg_curve, easz_curve


def test_ablation_bd_summary(benchmark, kodak, bench_config, easz_model):
    image = kodak[0]
    jpeg_curve, easz_curve = benchmark.pedantic(
        _bd_curves, args=(image, bench_config, easz_model), rounds=1, iterations=1)
    print()
    rows = [["jpeg", f"{r:.3f}", f"{q:.2f}"]
            for r, q in zip(jpeg_curve.rates, jpeg_curve.qualities)]
    rows += [["jpeg+easz", f"{r:.3f}", f"{q:.2f}"]
             for r, q in zip(easz_curve.rates, easz_curve.qualities)]
    print(format_table(["codec", "bpp", "psnr"], rows, title="Rate/PSNR operating points"))

    # BD-quality (PSNR gap at equal rate) only needs the rate ranges to overlap,
    # which they always do since Easz reuses the JPEG quality grid.
    delta_quality = bd_quality(jpeg_curve.rates, jpeg_curve.qualities,
                               easz_curve.rates, easz_curve.qualities)
    # BD-rate additionally needs the PSNR ranges to overlap; at CPU model scale the
    # reconstruction ceiling can keep the Easz curve entirely below JPEG's, in
    # which case the classic BD-rate is undefined and we report that instead.
    try:
        delta_rate = f"{bd_rate(jpeg_curve.rates, jpeg_curve.qualities, easz_curve.rates, easz_curve.qualities):+.1f}%"
    except ValueError:
        delta_rate = "undefined (PSNR ranges do not overlap at this model scale)"
    print(f"BD-quality of JPEG+Easz vs JPEG: {delta_quality:+.2f} dB at equal rate")
    print(f"BD-rate   of JPEG+Easz vs JPEG: {delta_rate}")

    # the Easz curve always sits at lower rate for the same base quality setting
    assert all(e <= j + 1e-9 for e, j in zip(easz_curve.rates, jpeg_curve.rates))
    assert np.isfinite(delta_quality)
