"""Table I — comparison with super-resolution methods on the Kodak-like set.

Regenerates the table's three rows: PSNR, MS-SSIM and reconstruction-model
size for Easz versus the SwinIR / RealESRGAN / BSRGAN 2× super-resolution
pathway (plus plain bicubic as a floor).  The paper reports Easz at
28.96 dB / 0.96 MS-SSIM with an 8.7 MB model against ≈24.9–25.4 dB / 0.93–0.94
with 67 MB models; at this reproduction's reduced scale the model-size and
flexibility advantages reproduce exactly, while the PSNR gap depends on the
training budget (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import erase_and_squeeze_image, proposed_mask, reconstruct_image, unsqueeze_image
from repro.experiments import format_table
from repro.metrics import ms_ssim, psnr
from repro.sr import BicubicUpscaler, BsrganProxy, RealEsrganProxy, SwinIRProxy


def _easz_reconstruction(image, config, model, seed=0, erase_per_row=None):
    erase_per_row = config.erase_per_row if erase_per_row is None else erase_per_row
    mask = proposed_mask(config.grid_size, erase_per_row, seed=seed)
    squeezed, grid, _ = erase_and_squeeze_image(image, mask, config.patch_size,
                                                config.subpatch_size)
    filled = unsqueeze_image(squeezed, mask, config.patch_size, config.subpatch_size,
                             grid, image.shape, fill="zero")
    return reconstruct_image(model, filled, mask)


def _table1_rows(images, config, model):
    methods = {
        "easz": None,
        "swinir": SwinIRProxy(factor=2),
        "realesrgan": RealEsrganProxy(factor=2),
        "bsrgan": BsrganProxy(factor=2),
        "bicubic": BicubicUpscaler(factor=2),
    }
    rows = []
    for name, method in methods.items():
        psnrs, ssims = [], []
        for image in images:
            if name == "easz":
                reconstruction = _easz_reconstruction(image, config, model)
                model_mb = model.model_size_bytes() / 2 ** 20
            else:
                reconstruction = method.roundtrip(image)
                model_mb = method.model_size_bytes / 2 ** 20
            psnrs.append(psnr(image, reconstruction))
            ssims.append(ms_ssim(image, reconstruction))
        rows.append([name, round(float(np.mean(psnrs)), 2),
                     round(float(np.mean(ssims)), 3), round(model_mb, 1)])
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_easz_vs_super_resolution(benchmark, kodak, bench_config, easz_model):
    images = [kodak[i] for i in range(2)]
    rows = benchmark.pedantic(_table1_rows, args=(images, bench_config, easz_model),
                              rounds=1, iterations=1)
    print()
    print(format_table(["method", "psnr_db", "ms_ssim", "recon_model_mb"], rows,
                       title="Table I — Easz vs super-resolution (Kodak-like set)"))
    by_name = {row[0]: row for row in rows}

    # model-size advantage: Easz's reconstructor is an order of magnitude
    # smaller than the 67 MB SR models (paper: 8.7 MB vs 67 MB)
    assert by_name["easz"][3] < by_name["swinir"][3] / 8
    # all methods produce usable reconstructions
    for name, psnr_db, ssim_value, _ in rows:
        assert psnr_db > 18.0, name
        assert ssim_value > 0.75, name
    # Easz keeps 75% of pixels bit-exact, so its reconstruction quality must be
    # high in absolute terms.  (The paper's *ordering* over the SR baselines does
    # not reproduce on the smooth synthetic stand-in images, which flatter
    # interpolation-style SR — see EXPERIMENTS.md.)
    assert by_name["easz"][1] > 26.0
    assert by_name["easz"][2] > 0.86

    # flexibility advantage (Table I's "Recon Model Size" row is paired in the
    # paper with the argument that one 8.7 MB model serves every reduction
    # ratio): the same model must keep working when the erase ratio doubles.
    images = [kodak[i] for i in range(2)]
    double_erase = [
        ms_ssim(image, _easz_reconstruction(image, bench_config, easz_model,
                                            erase_per_row=2))
        for image in images
    ]
    assert float(np.mean(double_erase)) > 0.75
