"""Fig. 6 — efficiency evaluation on the (simulated) Jetson TX2.

Regenerates the three panels:

* 6a — end-to-end latency breakdown (erase-and-squeeze / compression /
  transmit / decompression / reconstruction) for Easz, MBT and Cheng;
* 6b — encode-side power (CPU vs GPU);
* 6c — encode-side memory footprint.
"""

from __future__ import annotations

import pytest

from repro.codecs import ChengCodec, MbtCodec
from repro.experiments import format_table


def _fig6_reports(testbed, easz_codec_factory, shape):
    easz = easz_codec_factory(quality=75)
    codecs = [easz, MbtCodec(4), ChengCodec(4)]
    payload_bytes = int(0.4 * shape[0] * shape[1] / 8)
    return [testbed.run(codec, shape=shape, payload_bytes=payload_bytes, include_load=False)
            for codec in codecs]


@pytest.mark.benchmark(group="fig6")
def test_fig6_efficiency_on_jetson_tx2(benchmark, testbed, easz_codec_factory,
                                       paper_image_shape):
    reports = benchmark.pedantic(
        _fig6_reports, args=(testbed, easz_codec_factory, paper_image_shape),
        rounds=1, iterations=1,
    )
    easz, mbt, cheng = reports

    latency_rows = [[r.codec_name] + [round(v, 1) for v in (
        r.timing.erase_squeeze_ms, r.timing.encode_ms, r.timing.transmit_ms,
        r.timing.decode_ms, r.timing.reconstruction_ms, r.timing.total_ms)] for r in reports]
    power_rows = [[r.codec_name, round(r.edge_gpu_power_w, 2), round(r.edge_cpu_power_w, 2),
                   round(r.edge_total_power_w, 2)] for r in reports]
    memory_rows = [[r.codec_name, round(r.edge_memory_gb, 2)] for r in reports]

    print()
    print(format_table(
        ["codec", "erase&squeeze", "compress", "transmit", "decomp", "recon", "total_ms"],
        latency_rows, title="Fig. 6a — end-to-end latency breakdown (ms)"))
    print()
    print(format_table(["codec", "gpu_power_w", "cpu_power_w", "total_w"], power_rows,
                       title="Fig. 6b — encode power consumption"))
    print()
    print(format_table(["codec", "memory_gb"], memory_rows,
                       title="Fig. 6c — encode memory footprint"))
    print()
    print(f"erase-and-squeeze share of Easz end-to-end latency: "
          f"{100 * easz.timing.erase_squeeze_ms / easz.timing.total_ms:.2f}% (paper: 0.7%)")
    print(f"reconstruction share of Easz end-to-end latency: "
          f"{100 * easz.timing.reconstruction_ms / easz.timing.total_ms:.1f}% (paper: 74%)")
    print(f"total power reduction vs MBT: "
          f"{100 * (1 - easz.edge_total_power_w / mbt.edge_total_power_w):.1f}% (paper: 71.3%)")
    print(f"total power reduction vs Cheng: "
          f"{100 * (1 - easz.edge_total_power_w / cheng.edge_total_power_w):.1f}% (paper: 59.9%)")
    print(f"memory reduction vs MBT: "
          f"{100 * (1 - easz.edge_memory_gb / mbt.edge_memory_gb):.1f}% (paper: 45.8%)")
    print(f"memory reduction vs Cheng: "
          f"{100 * (1 - easz.edge_memory_gb / cheng.edge_memory_gb):.1f}% (paper: 47.1%)")

    # shape assertions
    assert easz.timing.total_ms < 0.25 * mbt.timing.total_ms
    assert easz.timing.erase_squeeze_ms / easz.timing.total_ms < 0.05
    assert easz.timing.reconstruction_ms == max(
        easz.timing.erase_squeeze_ms, easz.timing.encode_ms, easz.timing.decode_ms,
        easz.timing.reconstruction_ms)
    assert easz.edge_gpu_power_w < 0.2
    assert easz.edge_total_power_w < mbt.edge_total_power_w
    assert easz.edge_memory_gb < mbt.edge_memory_gb < 2.2
    assert easz.edge_memory_gb < cheng.edge_memory_gb
