"""Fig. 3 — proposed row-conditional mask vs unconstrained random mask.

Regenerates both panels over the erase ratios reachable with the benchmark
grid (25% and 50%; the paper sweeps 10–30% on a finer sub-patch grid):
(a) file-saving ratio after JPEG of the squeezed image and (b) reconstruction
MSE, for the proposed and the random mask strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import (
    erase_and_squeeze_image,
    proposed_mask,
    random_mask,
    reconstruct_image,
    unsqueeze_image,
)
from repro.experiments import Series, format_series_table
from repro.metrics import file_saving_ratio, mse

_ERASE_PER_ROW = (1, 2)  # grid of 4 sub-patches per row → 25% and 50%


def _mask_for(strategy, grid, erase_per_row, seed):
    if strategy == "proposed":
        return proposed_mask(grid, erase_per_row, seed=seed)
    return random_mask(grid, erase_per_row, seed=seed)


def _fig3_measurements(images, config, model, num_seeds=3):
    codec = JpegCodec(quality=75)
    results = {}
    for strategy in ("proposed", "random"):
        saving_curve = []
        mse_curve = []
        for erase_per_row in _ERASE_PER_ROW:
            savings = []
            errors = []
            for image in images:
                baseline = codec.compress(image).num_bytes
                for seed in range(num_seeds):
                    mask = _mask_for(strategy, config.grid_size, erase_per_row, seed)
                    squeezed, grid, _ = erase_and_squeeze_image(
                        image, mask, config.patch_size, config.subpatch_size)
                    savings.append(file_saving_ratio(
                        baseline, codec.compress(squeezed).num_bytes))
                    filled = unsqueeze_image(squeezed, mask, config.patch_size,
                                             config.subpatch_size, grid, image.shape,
                                             fill="zero")
                    reconstruction = reconstruct_image(model, filled, mask)
                    errors.append(mse(image, reconstruction))
            saving_curve.append(float(np.mean(savings)))
            mse_curve.append(float(np.mean(errors)))
        results[strategy] = {"saving": saving_curve, "mse": mse_curve}
    return results


@pytest.mark.benchmark(group="fig3")
def test_fig3_proposed_vs_random_mask(benchmark, kodak, bench_config, easz_model):
    images = [kodak[i][..., 0] for i in range(2)]  # luma plane keeps runtime low

    results = benchmark.pedantic(_fig3_measurements, args=(images, bench_config, easz_model),
                                 rounds=1, iterations=1)

    ratios = [100.0 * t / bench_config.grid_size for t in _ERASE_PER_ROW]
    print()
    print(format_series_table(
        [Series("Easz (proposed mask)", ratios, results["proposed"]["saving"]),
         Series("Random mask", ratios, results["random"]["saving"])],
        x_label="erase %", y_label="file saving ratio",
        title="Fig. 3a — impact on JPEG file size (higher is better)"))
    print()
    print(format_series_table(
        [Series("Easz (proposed mask)", ratios, results["proposed"]["mse"]),
         Series("Random mask", ratios, results["random"]["mse"])],
        x_label="erase %", y_label="reconstruction MSE",
        title="Fig. 3b — impact on reconstruction (lower is better)"))

    # shape assertions: more erasing saves more bits but hurts reconstruction
    assert results["proposed"]["saving"][-1] > results["proposed"]["saving"][0]
    assert results["proposed"]["mse"][-1] > results["proposed"]["mse"][0]
    # the proposed mask must not reconstruct worse than the unconstrained mask
    assert np.mean(results["proposed"]["mse"]) <= np.mean(results["random"]["mse"]) * 1.1
    # and the file savings must be real at every ratio for both strategies
    assert min(results["proposed"]["saving"]) > 0.0
