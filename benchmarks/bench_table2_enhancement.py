"""Table II — compression-performance enhancement of existing codecs.

For each baseline codec (JPEG, BPG, MBT, Cheng-anchor) and each dataset
(Kodak-like at ≈0.4 BPP, CLIC-like at ≈0.3 BPP) the benchmark reports the
original codec and the codec wrapped with Easz ("+Proposed"), scored by BPP,
BRISQUE, PI and TReS — the same rows as the paper's Table II.
"""

from __future__ import annotations

import pytest

from repro.codecs import BpgCodec, ChengCodec, JpegCodec, MbtCodec
from repro.experiments import evaluate_codec_on_dataset, format_table

# Quality settings chosen so the original codecs land near the paper's target
# bitrates (≈0.4 BPP on Kodak, ≈0.3 BPP on CLIC) at this reproduction's scale.
_BASELINES = {
    "kodak": {
        "jpeg": lambda: JpegCodec(quality=25),
        "bpg": lambda: BpgCodec(qp=38),
        "mbt": lambda: MbtCodec(quality=3),
        "cheng": lambda: ChengCodec(quality=3),
    },
    "clic": {
        "jpeg": lambda: JpegCodec(quality=20),
        "bpg": lambda: BpgCodec(qp=40),
        "mbt": lambda: MbtCodec(quality=2),
        "cheng": lambda: ChengCodec(quality=2),
    },
}


def _table2_rows(dataset_name, dataset, easz_codec_factory, max_images=2):
    rows = []
    for codec_name, make_codec in _BASELINES[dataset_name].items():
        original = evaluate_codec_on_dataset(make_codec(), dataset, max_images=max_images,
                                             no_reference=("brisque", "pi", "tres"),
                                             full_reference=())
        enhanced_codec = easz_codec_factory(base_codec=make_codec())
        enhanced = evaluate_codec_on_dataset(enhanced_codec, dataset, max_images=max_images,
                                             no_reference=("brisque", "pi", "tres"),
                                             full_reference=())
        for label, evaluation in (("org", original), ("+proposed", enhanced)):
            rows.append([codec_name, label, round(evaluation.bpp, 3),
                         round(evaluation.scores["brisque"], 2),
                         round(evaluation.scores["pi"], 2),
                         round(evaluation.scores["tres"], 2)])
    return rows


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("dataset_name", ["kodak", "clic"])
def test_table2_enhancement(benchmark, dataset_name, kodak, clic, easz_codec_factory):
    dataset = kodak if dataset_name == "kodak" else clic
    rows = benchmark.pedantic(_table2_rows, args=(dataset_name, dataset, easz_codec_factory),
                              rounds=1, iterations=1)
    print()
    print(format_table(["codec", "variant", "bpp", "brisque", "pi", "tres"], rows,
                       title=f"Table II — enhancement on the {dataset_name}-like dataset"))

    by_codec = {}
    for codec_name, label, bpp, brisque_score, pi_score, tres_score in rows:
        by_codec.setdefault(codec_name, {})[label] = (bpp, brisque_score, pi_score, tres_score)

    for codec_name, variants in by_codec.items():
        original = variants["org"]
        enhanced = variants["+proposed"]
        # +Easz must not increase the bitrate (the paper reports equal-or-lower BPP)
        assert enhanced[0] <= original[0] * 1.05, codec_name
        # scores stay within their metric ranges
        assert 0 <= enhanced[1] <= 100 and 0 <= original[1] <= 100
        assert enhanced[3] >= 0 and original[3] >= 0
    # the bitrate saving must be visible for the classical codecs
    assert by_codec["jpeg"]["+proposed"][0] < by_codec["jpeg"]["org"][0]
    assert by_codec["bpg"]["+proposed"][0] < by_codec["bpg"]["org"][0]
