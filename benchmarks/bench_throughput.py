"""Codec-stack throughput benchmark: emits ``BENCH_throughput.json``.

Times the vectorized fast paths (plan-cached erase-and-squeeze, table-driven
JPEG entropy coding, fused float32 reconstruction) over 256²–1024² gray and
RGB images, and measures the end-to-end 512×512 RGB JPEG+easz
encode→decode→reconstruct roundtrip against the frozen seed implementation
(``seed_reference.py``) on the same machine with the same model weights.
The seed and fast paths produce bit-identical JPEG payloads (same bpp) and
reconstructions equal to float32 tolerance (same PSNR), so the speedup is a
pure wall-clock comparison.

The ``entropy`` section times the byte-oriented range coder against the
legacy bit-at-a-time arithmetic coder on the bpg/neural-shaped symbol
workload (bar: >=3x combined encode+decode, guarded by
``tests/test_perf_smoke.py``).  The ``dct`` section times the fused
squeeze-aware block gather + batched multi-image DCT entry point (one
``(N·C·blocks, 64) @ (64, 64)`` GEMM, row-split over the opt-in thread
pool) against the per-channel squeeze→pad→block→dct2 pipeline (bar:
>=1.5x at batch >= 4, guarded; recorded only on >=2-CPU hosts — on one
core both paths are memory-bound, so the section carries a ``skipped``
marker there like the sharded/shm bars).

The ``serving`` section measures the batched serving path: images/sec of
``reconstruct_batch`` (the fused multi-image engine) against sequential
per-image ``reconstruct_image`` calls on 256² RGB, across batch sizes, plus
the batched ``decode_batch`` roundtrip — the acceptance bar is ≥1.5x
images/sec for batched reconstruction at batch ≥ 4.

The ``serving.sharded`` subsection drives the full 256² RGB reconstruct
workload through a live 2-shard :class:`ShardedCompressionServer` and the
threaded :class:`CompressionServer` back to back and records images/sec for
both (bar: ≥1.3x at 2 shards, guarded by ``tests/test_perf_smoke.py``).
Process sharding only helps when there are cores to shard over, so on a
single-CPU host the subsection records ``{"skipped": ...}`` and the guard
skips with it.

The ``serving.shm`` subsection isolates the response-transport layer: the
same 2-shard pool serves the 256² RGB *decode* workload (mid-quality JPEG
decode + unsqueeze — the serving kind whose response bytes dominate its
compute) once over the PR-3 queue path (``use_shm=False``) and once over
the zero-copy shared-memory ring.  Each response is ~1.5 MiB of pixels; the
queue path copies them ~six times (``tobytes``, queue pickle, pipe in/out,
unpickle, parent copy) while the ring copies twice (slot in, response out),
so the ring must deliver ≥1.15x images/sec at 2 shards (guarded by
``test_perf_smoke.py``, skipped on <2-CPU hosts like the sharded bar).

The ``serving.chaos`` subsection is a correctness record, not a timing one:
it replays two :mod:`repro.serve.scenarios` scenarios — payload corruption
on the threaded server, and SIGKILL-under-watchdog on a 2-shard pool
(skipped on <2-CPU hosts) — and records the exactly-once invariants
(``futures_lost`` / ``futures_duplicated`` / ``decoder_crashes``, all of
which must be zero) plus per-tenant p50/p99/SLO-miss next to the M/D/c
predicted wait.  ``test_perf_smoke.py`` enforces the zeros strictly on
whatever was recorded; ``diff_bench.py`` deliberately has no bar for them —
an invariant is not a noisy timing.

Run with::

    PYTHONPATH=src python benchmarks/bench_throughput.py

The JSON lands in the repository root as ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.codecs.jpeg import JpegCodec, dct2, dct2_batched  # noqa: E402
from repro.entropy import encode_symbols, decode_symbols  # noqa: E402
from repro.core import (  # noqa: E402
    EaszConfig,
    EaszDecoder,
    EaszEncoder,
    EaszReconstructor,
    get_squeeze_plan,
    proposed_mask,
    reconstruct_batch,
    reconstruct_image,
)
from repro.image import pad_to_multiple  # noqa: E402
from repro.metrics import psnr  # noqa: E402

import seed_reference as seed  # noqa: E402

SIZES = (256, 512, 1024)
ROUNDTRIP_SIZE = 512  # the acceptance-criterion comparison point


def bench_config():
    """CPU-scale model matching the benchmark suite's default geometry."""
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=48, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


def synthetic_image(size, color, seed_value=0):
    rng = np.random.default_rng(seed_value)
    base = rng.random((size, size, 3) if color else (size, size))
    # blur lightly so JPEG sees photographic-ish statistics, not white noise
    for axis in (0, 1):
        base = 0.25 * np.roll(base, 1, axis) + 0.5 * base + 0.25 * np.roll(base, -1, axis)
    return np.clip(base, 0.0, 1.0)


def timeit(fn, repeats=3):
    fn()  # warm caches (plans, LUTs, BLAS)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def fast_pipeline(image, mask, config, codec, model):
    plan = get_squeeze_plan(mask, config.subpatch_size)
    compressed, grid_shape, _ = codec.compress_squeezed(image, plan)
    decoded = np.clip(np.asarray(codec.decompress(compressed)), 0.0, 1.0)
    filled = plan.unsqueeze_image(decoded, grid_shape, image.shape)
    return reconstruct_image(model, filled, mask), compressed


def seed_pipeline(image, mask, config, codec, model):
    squeezed, grid_shape, original_shape = seed.seed_erase_and_squeeze_image(
        image, mask, config.patch_size, config.subpatch_size)
    compressed = codec.compress(squeezed)
    decoded = np.clip(np.asarray(codec.decompress(compressed)), 0.0, 1.0)
    filled = seed.seed_unsqueeze_image(
        decoded, mask, config.patch_size, config.subpatch_size, grid_shape, original_shape)
    return seed.seed_reconstruct_image(model, filled, mask), compressed


def stage_timings(image, mask, config, codec, model):
    """Per-stage fast-path timings for one image."""
    plan = get_squeeze_plan(mask, config.subpatch_size)
    squeezed, grid_shape, original_shape = plan.squeeze_image(image)
    compressed = codec.compress(squeezed)
    decoded = np.clip(np.asarray(codec.decompress(compressed)), 0.0, 1.0)
    filled = plan.unsqueeze_image(decoded, grid_shape, original_shape)
    return {
        "squeeze_s": timeit(lambda: plan.squeeze_image(image)),
        "jpeg_encode_s": timeit(lambda: codec.compress(squeezed)),
        "jpeg_decode_s": timeit(lambda: codec.decompress(compressed)),
        "unsqueeze_s": timeit(lambda: plan.unsqueeze_image(decoded, grid_shape, original_shape)),
        "reconstruct_s": timeit(lambda: reconstruct_image(model, filled, mask)),
        "bpp": 8.0 * compressed.num_bytes / (image.shape[0] * image.shape[1]),
    }


def entropy_section(num_symbols=256, count=120_000, repeats=3):
    """Range coder vs the legacy arithmetic coder on the bpg/neural workload.

    The symbol stream mirrors what the block codecs feed the coder: a
    256-symbol magnitude alphabet with the exponential skew of quantised
    DCT/latent coefficients, encoded under one fresh adaptive model (the
    ``encode_symbols`` shape; the codecs drive the same backends through
    their streaming/array APIs).  The bar — guarded by
    ``test_perf_smoke.py`` — is >=3x combined encode+decode throughput.
    """
    rng = np.random.default_rng(0)
    probabilities = np.exp(-0.08 * np.arange(num_symbols))
    probabilities /= probabilities.sum()
    symbols = rng.choice(num_symbols, size=count, p=probabilities).tolist()

    payload_range = encode_symbols(symbols, num_symbols)
    payload_legacy = encode_symbols(symbols, num_symbols, legacy=True)
    assert decode_symbols(payload_range, count, num_symbols) == symbols
    assert decode_symbols(payload_legacy, count, num_symbols) == symbols

    range_enc_s = timeit(lambda: encode_symbols(symbols, num_symbols), repeats)
    range_dec_s = timeit(lambda: decode_symbols(payload_range, count, num_symbols),
                         repeats)
    legacy_enc_s = timeit(lambda: encode_symbols(symbols, num_symbols, legacy=True),
                          max(repeats - 1, 2))
    legacy_dec_s = timeit(lambda: decode_symbols(payload_legacy, count, num_symbols),
                          max(repeats - 1, 2))
    range_s = range_enc_s + range_dec_s
    legacy_s = legacy_enc_s + legacy_dec_s
    section = {
        "workload": f"{count}_skewed_symbols_alphabet{num_symbols}",
        "range_encode_s": range_enc_s,
        "range_decode_s": range_dec_s,
        "legacy_encode_s": legacy_enc_s,
        "legacy_decode_s": legacy_dec_s,
        "range_symbols_per_s": 2 * count / range_s,
        "legacy_symbols_per_s": 2 * count / legacy_s,
        "speedup": legacy_s / range_s,
        "payload_bytes_range": len(payload_range),
        "payload_bytes_legacy": len(payload_legacy),
    }
    print(f"entropy: range {2 * count / range_s / 1e6:.2f} Msym/s vs legacy "
          f"{2 * count / legacy_s / 1e6:.2f} Msym/s ({section['speedup']:.2f}x, "
          f"bytes {len(payload_range)} vs {len(payload_legacy)})")
    return section


def dct_section(config, mask, size=512, batch=8, repeats=7):
    """Parallel batched block-transform front end vs per-channel calls.

    Measures the pixels→DCT-coefficients stage of the codec over a
    micro-batch.  ``per_channel`` is the seed pattern, one channel at a
    time: materialise the squeezed channel (``SqueezePlan.squeeze_image``),
    edge-pad, extract 8×8 blocks, broadcast-matmul ``dct2``.  ``batched``
    is the fused pipeline: every channel's DCT-ready blocks gathered
    straight from the original pixels through the cached
    ``BlockGatherPlan``, every channel of every image concatenated into one
    ``(N·C·blocks, 8, 8)`` ``dct2_batched`` call — a single 64×64 GEMM,
    row-split across the opt-in DCT thread pool (``set_dct_threads``).
    Outputs are bit-identical.

    The guarded >=1.5x bar comes from the thread-parallel GEMM, so — like
    the sharded and shm serving bars — it is only recorded on hosts with
    >= 2 visible CPUs; a single-CPU host records a ``skipped`` marker plus
    the single-threaded numbers for information (on one core both paths
    are bandwidth-bound and the ratio hovers around 1.0-2x with the host's
    BLAS mode).
    """
    from repro.codecs.jpeg import _DCT_MT_MIN_BLOCKS, _image_to_blocks, set_dct_threads
    from repro.serve import available_cpus

    plan = get_squeeze_plan(mask, config.subpatch_size)
    images = [synthetic_image(size, color=False, seed_value=400 + index)
              for index in range(batch)]
    block_plans = [plan.block_plan(image.shape[:2]) for image in images]
    total_blocks = sum(bp.num_blocks for bp in block_plans)
    assert total_blocks >= _DCT_MT_MIN_BLOCKS, (
        "dct bench workload too small to engage the thread pool")

    def per_channel():
        out = []
        for image in images:
            squeezed, _, _ = plan.squeeze_image(image)
            padded, _ = pad_to_multiple(squeezed, 8)
            out.append(dct2(_image_to_blocks(padded * 255.0 - 128.0)))
        return out

    def batched():
        blocks = [block_plan.gather_blocks(image) * 255.0 - 128.0
                  for image, block_plan in zip(images, block_plans)]
        return dct2_batched(np.concatenate(blocks))

    reference = np.concatenate(per_channel())
    fused = batched()
    max_diff = float(np.abs(reference - fused).max())
    assert max_diff < 1e-9, f"fused block transform diverged: {max_diff}"
    per_channel_s = timeit(per_channel, repeats)
    single_thread_s = timeit(batched, repeats)

    section = {
        "workload": f"batch{batch}_{size}x{size}_gray",
        "total_blocks": int(fused.shape[0]),
        "per_channel_s": per_channel_s,
        "batched_single_thread_s": single_thread_s,
        "single_thread_speedup": per_channel_s / single_thread_s,
        "max_abs_diff": max_diff,
    }
    cpus = available_cpus()
    if cpus < 2:
        section["skipped"] = (f"host exposes {cpus} CPU; the parallel DCT "
                              "bar needs >= 2 to thread the GEMM")
        print(f"dct: batched single-thread {single_thread_s * 1e3:.2f}ms vs "
              f"per-channel {per_channel_s * 1e3:.2f}ms "
              f"({section['single_thread_speedup']:.2f}x); parallel bar skipped "
              f"({cpus} CPU visible)")
        return section

    threads = min(cpus, 8)
    previous = set_dct_threads(threads)
    try:
        threaded = batched()
        assert np.array_equal(threaded, fused), "threaded GEMM changed results"
        batched_s = timeit(batched, repeats)
    finally:
        set_dct_threads(previous)
    section["dct_threads"] = threads
    section["batched_s"] = batched_s
    section["speedup"] = per_channel_s / batched_s
    print(f"dct: fused+batched ({threads} threads) {fused.shape[0]} blocks in "
          f"{batched_s * 1e3:.2f}ms vs per-channel {per_channel_s * 1e3:.2f}ms "
          f"({section['speedup']:.2f}x; single-thread "
          f"{section['single_thread_speedup']:.2f}x)")
    return section


def serving_section(config, model, codec, mask, batch_sizes=(1, 2, 4, 8),
                    size=256, repeats=5):
    """Batched serving throughput vs sequential per-image calls (256² RGB)."""
    rng_images = [synthetic_image(size, color=True, seed_value=100 + index)
                  for index in range(max(batch_sizes))]
    encoder = EaszEncoder(config, base_codec=codec, seed=0)
    decoder = EaszDecoder(model=model, config=config, base_codec=codec)
    packages = encoder.encode_batch(rng_images, mask=mask)
    filled = [decoder.decode(package, reconstruct=False) for package in packages]

    # equivalence guards: payload bytes and pixel agreement
    sequential_packages = [encoder.encode(image, mask=mask) for image in rng_images]
    for batched_pkg, sequential_pkg in zip(packages, sequential_packages):
        assert batched_pkg.codec_payload.payload == sequential_pkg.codec_payload.payload, \
            "encode_batch payloads are no longer bit-exact"
    sequential_out = [reconstruct_image(model, image, mask) for image in filled]
    batched_out = reconstruct_batch(model, filled, mask)
    max_diff = max(float(np.abs(a - b).max())
                   for a, b in zip(sequential_out, batched_out))
    assert max_diff < 1e-5, f"batched reconstruction diverged: {max_diff}"

    section = {
        "image": f"{size}x{size}_rgb",
        "max_abs_diff_batched_vs_sequential": max_diff,
        "payload_bit_exact": True,
        "batches": {},
    }
    per_image_s = timeit(lambda: reconstruct_image(model, filled[0], mask), repeats)
    section["sequential_reconstruct_s_per_image"] = per_image_s
    section["sequential_images_per_s"] = 1.0 / per_image_s
    for batch_size in batch_sizes:
        group = filled[:batch_size]
        batch_s = timeit(lambda group=group: reconstruct_batch(model, group, mask),
                         repeats)
        sequential_s = per_image_s * batch_size
        section["batches"][batch_size] = {
            "batched_s": batch_s,
            "batched_images_per_s": batch_size / batch_s,
            "sequential_s": sequential_s,
            "speedup_vs_sequential": sequential_s / batch_s,
        }
        print(f"serving reconstruct batch {batch_size}: "
              f"{batch_size / batch_s:.2f} img/s "
              f"(seq {batch_size / sequential_s:.2f} img/s, "
              f"speedup {sequential_s / batch_s:.2f}x)")

    # end-to-end decode_batch (base decode + unsqueeze + fused reconstruction)
    batch = packages[:4]
    decode_batch_s = timeit(lambda: decoder.decode_batch(batch), repeats)
    decode_seq_s = timeit(lambda: [decoder.decode(package) for package in batch],
                          max(repeats - 2, 2))
    section["decode_batch4_s"] = decode_batch_s
    section["decode_sequential4_s"] = decode_seq_s
    section["decode_batch4_speedup"] = decode_seq_s / decode_batch_s
    print(f"serving decode batch 4: {decode_batch_s:.3f}s vs sequential "
          f"{decode_seq_s:.3f}s ({decode_seq_s / decode_batch_s:.2f}x)")
    return section


def _drive_server(server, packages, rounds=3, kind="reconstruct"):
    """Push every package through a live server ``rounds`` times; images/sec."""
    # warm: plan/codec caches, fused engine, (for shards) child process state
    for pending in [server.submit(package, kind=kind) for package in packages]:
        pending.result(timeout=300.0)
    start = time.perf_counter()
    pendings = []
    for _ in range(rounds):
        pendings.extend(server.submit(package, kind=kind) for package in packages)
    responses = [pending.result(timeout=300.0) for pending in pendings]
    elapsed = time.perf_counter() - start
    return len(responses) / elapsed, responses


def sharded_serving_section(config, model, mask, size=256, num_images=8, shards=2):
    """Sharded vs threaded images/sec on the 256² RGB reconstruct workload."""
    from repro.serve import (BatchPolicy, CompressionServer,
                             ShardedCompressionServer, available_cpus)

    cpus = available_cpus()
    if cpus < 2:
        print(f"serving sharded: skipped ({cpus} CPU visible; sharding needs >= 2)")
        return {"skipped": f"host exposes {cpus} CPU; process sharding needs >= 2"}

    codec = JpegCodec(quality=75)
    images = [synthetic_image(size, color=True, seed_value=200 + index)
              for index in range(num_images)]
    encoder = EaszEncoder(config, base_codec=codec, seed=0)
    decoder = EaszDecoder(model=model, config=config, base_codec=codec)
    packages = encoder.encode_batch(images, mask=mask)
    references = [decoder.decode(package) for package in packages]
    policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0, mode="adaptive")

    with CompressionServer(model=model, config=config, num_workers=2,
                           queue_depth=256, batch_policy=policy) as server:
        threaded_ips, _ = _drive_server(server, packages)
    with ShardedCompressionServer(model=model, config=config, num_shards=shards,
                                  queue_depth=256, batch_policy=policy) as server:
        sharded_ips, responses = _drive_server(server, packages)

    max_diff = max(float(np.abs(response.image - references[index % num_images]).max())
                   for index, response in enumerate(responses))
    assert max_diff < 1e-5, f"sharded responses diverged from sequential decode: {max_diff}"
    section = {
        "image": f"{size}x{size}_rgb",
        "num_shards": shards,
        "threaded_images_per_s": threaded_ips,
        "sharded_images_per_s": sharded_ips,
        "speedup_vs_threaded": sharded_ips / threaded_ips,
        "max_abs_diff_vs_sequential": max_diff,
    }
    print(f"serving sharded ({shards} shards): {sharded_ips:.2f} img/s vs threaded "
          f"{threaded_ips:.2f} img/s ({section['speedup_vs_threaded']:.2f}x)")
    return section


def shm_serving_section(config, model, mask, size=256, num_images=8, shards=2,
                        rounds=4):
    """Zero-copy shm ring vs the queue path on the 256² RGB decode workload.

    ``kind="decode"`` (JPEG decode + unsqueeze, no transformer pass) at a
    mid-range quality is the serving kind with the highest
    response-bytes-to-compute ratio — each response is still the full
    1.5 MiB float64 frame while the entropy decode stays cheap — which is
    exactly where the response transport is the bottleneck the shm ring
    removes.  The reconstruct path enjoys the same absolute savings
    (~2 ms/image measured) but hides them behind ~10x more model compute.
    """
    from repro.serve import (BatchPolicy, ShardedCompressionServer,
                             available_cpus, shm_available)

    cpus = available_cpus()
    if cpus < 2:
        print(f"serving shm: skipped ({cpus} CPU visible; sharding needs >= 2)")
        return {"skipped": f"host exposes {cpus} CPU; process sharding needs >= 2"}
    if not shm_available():
        print("serving shm: skipped (host cannot create shared memory)")
        return {"skipped": "host cannot create shared memory"}

    codec = JpegCodec(quality=25)
    images = [synthetic_image(size, color=True, seed_value=300 + index)
              for index in range(num_images)]
    encoder = EaszEncoder(config, base_codec=codec, seed=0)
    decoder = EaszDecoder(model=model, config=config, base_codec=codec)
    packages = encoder.encode_batch(images, mask=mask)
    references = [decoder.decode(package, reconstruct=False)
                  for package in packages]
    policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0, mode="adaptive")

    results = {}
    for label, use_shm in (("queue", False), ("shm", True)):
        with ShardedCompressionServer(model=model, config=config,
                                      num_shards=shards, queue_depth=256,
                                      batch_policy=policy,
                                      use_shm=use_shm) as server:
            ips, responses = _drive_server(server, packages, rounds=rounds,
                                           kind="decode")
            snapshot = server.stats.snapshot()
        transports = snapshot.get("response_transport", {})
        if use_shm:
            assert transports.get("shm", 0) > 0, \
                "shm run silently fell back to the queue path"
        max_diff = max(
            float(np.abs(response.image - references[index % num_images]).max())
            for index, response in enumerate(responses))
        assert max_diff == 0.0, f"decode responses diverged: {max_diff}"
        results[label] = {"images_per_s": ips, "response_transport": transports}

    section = {
        "image": f"{size}x{size}_rgb",
        "kind": "decode",
        "num_shards": shards,
        "queue_images_per_s": results["queue"]["images_per_s"],
        "shm_images_per_s": results["shm"]["images_per_s"],
        "speedup_vs_queue": (results["shm"]["images_per_s"]
                             / results["queue"]["images_per_s"]),
        "response_transport": results["shm"]["response_transport"],
        "max_abs_diff_vs_reference": 0.0,
    }
    print(f"serving shm ({shards} shards, decode): "
          f"{section['shm_images_per_s']:.2f} img/s vs queue path "
          f"{section['queue_images_per_s']:.2f} img/s "
          f"({section['speedup_vs_queue']:.2f}x)")
    return section


def _chaos_summary(report):
    """The recorded shape of one scenario replay: invariants + per-tenant SLOs."""
    return {
        "scenario": report.scenario,
        "duration_s": report.duration_s,
        "servers": report.servers,
        "offered": report.offered,
        "submitted": report.submitted,
        "completed": report.completed,
        "futures_lost": report.futures_lost,
        "futures_duplicated": report.futures_duplicated,
        "decoder_crashes": report.decoder_crashes,
        "watchdog_restarts": report.watchdog_restarts,
        "chaos_events": len(report.chaos_events),
        "utilisation": report.utilisation,
        "tenants": {
            tenant.name: {
                "qos": tenant.qos,
                "deadline_ms": tenant.deadline_ms,
                "latency_p50_ms": tenant.latency_p50_ms,
                "latency_p99_ms": tenant.latency_p99_ms,
                "slo_miss_rate": tenant.slo_miss_rate,
                "predicted_wait_ms_mean": tenant.predicted_wait_ms_mean,
            }
            for tenant in report.tenants
        },
    }


def chaos_serving_section(config, model, threaded_duration_s=4.0):
    """Replay chaos scenarios and record the exactly-once invariants.

    Unlike the timing sections this one records *correctness under fault
    injection*: zero lost futures, zero duplicated resolutions, zero
    non-graceful decoder failures, with per-tenant p50/p99/SLO-miss next to
    the M/D/c prediction.  The payload-corruption scenario runs on the
    threaded server (any host); the SIGKILL scenario needs process shards
    and records a ``skipped`` marker on single-CPU hosts, like the
    sharded/shm timing bars.  ``tests/test_perf_smoke.py`` enforces the
    invariants on whatever was recorded — strictly, no noise margin.
    """
    import dataclasses

    from repro.serve import (CompressionServer, ShardedCompressionServer,
                             available_cpus)
    from repro.serve.scenarios import builtin_scenarios, run_scenario

    scenarios = builtin_scenarios()
    corrupt = dataclasses.replace(scenarios["corrupt-payloads"],
                                  duration_s=threaded_duration_s)
    with CompressionServer(model=model, config=config, num_workers=2,
                           queue_depth=128) as server:
        report = run_scenario(corrupt, server, config=config, model=model)
    assert report.ok(), f"chaos invariants violated: {report.headline()}"
    section = {"threaded_corruption": _chaos_summary(report)}
    print(f"serving chaos (threaded): {report.headline()}")

    cpus = available_cpus()
    if cpus < 2:
        print(f"serving chaos sharded: skipped ({cpus} CPU visible; "
              "sharding needs >= 2)")
        section["sharded_kill"] = {
            "skipped": f"host exposes {cpus} CPU; process sharding needs >= 2"}
        return section

    kill = scenarios["kill-shards"]
    with ShardedCompressionServer(model=model, config=config, num_shards=2,
                                  **dict(kill.server_hints)) as server:
        report = run_scenario(kill, server, config=config, model=model)
    assert report.ok(), f"chaos invariants violated: {report.headline()}"
    assert report.watchdog_restarts >= 1, \
        "kill-shards replay never exercised a watchdog restart"
    section["sharded_kill"] = _chaos_summary(report)
    print(f"serving chaos (sharded): {report.headline()}")
    return section


def main():
    config = bench_config()
    model = EaszReconstructor(config)
    codec = JpegCodec(quality=75)
    seed_codec = seed.SeedJpegCodec(quality=75)
    mask = proposed_mask(config.grid_size, config.erase_per_row,
                         config.intra_row_min_distance, seed=0)

    report = {
        "config": {
            "patch_size": config.patch_size,
            "subpatch_size": config.subpatch_size,
            "erase_per_row": config.erase_per_row,
            "d_model": config.d_model,
            "encoder_blocks": config.encoder_blocks,
            "decoder_blocks": config.decoder_blocks,
            "jpeg_quality": 75,
        },
        "stages": {},
        "roundtrip_512_rgb": {},
        "entropy": {},
        "dct": {},
        "serving": {},
    }

    # --- entropy: range coder vs legacy arithmetic coder ----------------- #
    report["entropy"] = entropy_section()

    # --- dct: batched multi-channel GEMM vs per-channel calls ------------ #
    report["dct"] = dct_section(config, mask)

    for size in SIZES:
        for color in (False, True):
            label = f"{size}x{size}_{'rgb' if color else 'gray'}"
            image = synthetic_image(size, color)
            report["stages"][label] = stage_timings(image, mask, config, codec, model)
            print(f"{label}: " + "  ".join(
                f"{k}={v:.4f}" for k, v in report["stages"][label].items()))

    # --- acceptance comparison: 512x512 RGB roundtrip, fast vs seed ------ #
    image = synthetic_image(ROUNDTRIP_SIZE, color=True)
    fast_out, fast_comp = fast_pipeline(image, mask, config, codec, model)
    seed_out, seed_comp = seed_pipeline(image, mask, config, seed_codec, model)
    assert fast_comp.payload == seed_comp.payload, "entropy coding is no longer bit-exact"

    fast_s = timeit(lambda: fast_pipeline(image, mask, config, codec, model))
    seed_s = timeit(lambda: seed_pipeline(image, mask, config, seed_codec, model), repeats=2)
    pixels = image.shape[0] * image.shape[1]
    report["roundtrip_512_rgb"] = {
        "fast_s": fast_s,
        "seed_s": seed_s,
        "speedup": seed_s / fast_s,
        "psnr_fast": float(psnr(image, fast_out)),
        "psnr_seed": float(psnr(image, seed_out)),
        "bpp_fast": 8.0 * fast_comp.num_bytes / pixels,
        "bpp_seed": 8.0 * seed_comp.num_bytes / pixels,
        "max_abs_diff": float(np.abs(fast_out - seed_out).max()),
        "payload_bit_exact": True,
    }
    rt = report["roundtrip_512_rgb"]
    print(f"roundtrip 512x512 rgb: fast {fast_s:.3f}s seed {seed_s:.3f}s "
          f"speedup {rt['speedup']:.2f}x  psnr {rt['psnr_fast']:.3f} vs {rt['psnr_seed']:.3f}  "
          f"bpp {rt['bpp_fast']:.4f} vs {rt['bpp_seed']:.4f}")

    # --- serving: batched reconstruction vs per-image calls -------------- #
    report["serving"] = serving_section(config, model, codec, mask)

    # --- serving: process-sharded pool vs the threaded server ------------ #
    report["serving"]["sharded"] = sharded_serving_section(config, model, mask)

    # --- serving: zero-copy shm ring vs the queue response path ---------- #
    report["serving"]["shm"] = shm_serving_section(config, model, mask)

    # --- serving: chaos invariants under fault injection ----------------- #
    report["serving"]["chaos"] = chaos_serving_section(config, model)

    out_path = REPO_ROOT / "BENCH_throughput.json"
    out_path.write_text(json.dumps(report, indent=2))
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    main()
