"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one of the paper's tables or figures
(see DESIGN.md §4 for the index).  Everything runs at reduced scale — small
synthetic Kodak/CLIC stand-ins and the cached CPU-scale reconstruction model —
so the whole suite finishes in CPU-minutes; the printed rows/series are the
quantities the paper reports, and EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

import pytest

from repro.codecs import JpegCodec, LearnedTransformCodec
from repro.core import EaszCodec, EaszConfig
from repro.datasets import ClicDataset, KodakDataset
from repro.edge import EdgeServerTestbed
from repro.experiments import default_benchmark_config, pretrained_model


def pytest_configure(config):
    # benchmarks live outside the default testpaths; make sure pytest-benchmark
    # grouping is stable across files
    config.option.benchmark_group_by = getattr(config.option, "benchmark_group_by", "group")


@pytest.fixture(scope="session")
def bench_config():
    """CPU-scale Easz configuration shared by all benchmarks."""
    return default_benchmark_config()


@pytest.fixture(scope="session")
def easz_model(bench_config):
    """Pre-trained (cached) Easz reconstruction model.

    2000 optimisation steps keep the first (cold-cache) benchmark run to a few
    CPU-minutes while giving the reconstructor enough capacity for the quality
    comparisons (Table I / Table II / Fig. 8) to show the intended orderings.
    """
    return pretrained_model(bench_config, steps=2000, batch_size=32)


@pytest.fixture(scope="session")
def kodak():
    """Kodak-like evaluation set (small resolution for CPU runtime)."""
    return KodakDataset(num_images=4, height=96, width=144)


@pytest.fixture(scope="session")
def clic():
    """CLIC-like evaluation set (small resolution for CPU runtime)."""
    return ClicDataset(num_images=4, height=96, width=160)


@pytest.fixture(scope="session")
def testbed():
    """Simulated Jetson TX2 → Wi-Fi → RTX 2080Ti server testbed."""
    return EdgeServerTestbed()


@pytest.fixture(scope="session")
def paper_image_shape():
    """The 512×768 RGB Kodak image shape used by the paper's efficiency plots."""
    return (512, 768, 3)


@pytest.fixture(scope="session")
def easz_codec_factory(bench_config, easz_model):
    """Factory building a <base codec>+Easz codec with the cached model.

    ``factory(quality=75, erase_per_row=None, mask_strategy="proposed",
    base_codec=None)`` — ``quality`` configures a JPEG base codec unless an
    explicit ``base_codec`` is supplied.
    """
    def factory(quality=75, erase_per_row=None, mask_strategy="proposed", base_codec=None):
        config = bench_config
        if erase_per_row is not None and erase_per_row != config.erase_per_row:
            config = EaszConfig(**{**config.__dict__, "erase_per_row": erase_per_row})
        base = base_codec if base_codec is not None else JpegCodec(quality=quality)
        return EaszCodec(config=config, base_codec=base, model=easz_model,
                         mask_strategy=mask_strategy, seed=0)

    return factory


@pytest.fixture(scope="session")
def balle_profiles():
    """Fig. 1 comparison points: Ballé factorized / hyperprior cost profiles."""
    factorized = LearnedTransformCodec(quality=4, entropy_model="factorized",
                                       macs_per_pixel=12_000, model_bytes=12 * 2 ** 20,
                                       name="balle-factorized")
    hyperprior = LearnedTransformCodec(quality=4, entropy_model="hyperprior",
                                       macs_per_pixel=14_000, model_bytes=25 * 2 ** 20,
                                       name="balle-hyperprior")
    return [factorized, hyperprior]
