"""Additional ablations beyond the paper's figures (DESIGN.md §4).

* sampler constraints — effect of the intra-row (δ) and inter-row (Δ)
  distance constraints on mask adjacency statistics;
* fill strategy — zero vs neighbour vs mean fill before reconstruction;
* two-stage patchify — attention cost of the naive pixel-token transformer
  vs the patch-confined transformer (the paper's Section III-B analysis).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RowConditionalSampler,
    attention_complexity,
    erase_and_squeeze_image,
    proposed_mask,
    reconstruct_image,
    unsqueeze_image,
)
from repro.experiments import format_table
from repro.metrics import psnr


def _adjacency_rate(mask):
    """Fraction of erased sub-patches with an erased horizontal neighbour."""
    erased = (np.asarray(mask) == 0)
    horizontal = erased[:, :-1] & erased[:, 1:]
    total = erased.sum()
    return float(horizontal.sum() / total) if total else 0.0


def _sampler_constraint_rows(grid=8, erase_per_row=2, samples=24):
    rows = []
    for delta, inter in ((0, 0), (1, 0), (1, 1), (2, 1)):
        sampler = RowConditionalSampler(grid, erase_per_row,
                                        intra_row_min_distance=delta,
                                        inter_row_min_distance=inter)
        rng = np.random.default_rng(0)
        rates = [_adjacency_rate(sampler.sample_mask(rng=rng)) for _ in range(samples)]
        rows.append([delta, inter, round(float(np.mean(rates)), 4)])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_sampler_constraints(benchmark):
    rows = benchmark.pedantic(_sampler_constraint_rows, rounds=1, iterations=1)
    print()
    print(format_table(["delta (intra-row)", "Delta (inter-row)", "adjacent-erasure rate"], rows,
                       title="Ablation — sampler constraints vs erased-block adjacency"))
    unconstrained = rows[0][2]
    constrained = rows[1][2]
    assert constrained <= unconstrained
    assert rows[-1][2] == 0.0  # δ=2 forbids horizontal adjacency entirely


def _fill_strategy_rows(image, config, model):
    mask = proposed_mask(config.grid_size, config.erase_per_row, seed=0)
    squeezed, grid, _ = erase_and_squeeze_image(image, mask, config.patch_size,
                                                config.subpatch_size)
    rows = []
    for fill in ("zero", "neighbor", "mean"):
        filled = unsqueeze_image(squeezed, mask, config.patch_size, config.subpatch_size,
                                 grid, image.shape, fill=fill)
        reconstruction = reconstruct_image(model, filled, mask)
        rows.append([fill, round(psnr(image, filled), 2), round(psnr(image, reconstruction), 2)])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_fill_strategy(benchmark, kodak, bench_config, easz_model):
    image = kodak[0][..., 0]
    rows = benchmark.pedantic(_fill_strategy_rows, args=(image, bench_config, easz_model),
                              rounds=1, iterations=1)
    print()
    print(format_table(["fill", "filled_psnr", "reconstructed_psnr"], rows,
                       title="Ablation — fill strategy before transformer reconstruction"))
    by_fill = {row[0]: row for row in rows}
    # reconstruction always improves over the zero-filled image
    assert by_fill["zero"][2] > by_fill["zero"][1] + 3.0
    # the transformer output is (by construction) independent of the fill,
    # since erased tokens never reach the encoder
    recon_psnrs = [row[2] for row in rows]
    assert max(recon_psnrs) - min(recon_psnrs) < 0.01


def _patchify_cost_rows():
    rows = []
    for resolution in (128, 256, 512):
        naive = attention_complexity(resolution, resolution, patch_size=None, subpatch_size=4)
        staged = attention_complexity(resolution, resolution, patch_size=32, subpatch_size=4)
        rows.append([f"{resolution}x{resolution}", f"{naive:.3e}", f"{staged:.3e}",
                     round(naive / staged, 1)])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_two_stage_patchify_cost(benchmark):
    rows = benchmark.pedantic(_patchify_cost_rows, rounds=1, iterations=1)
    print()
    print(format_table(["image", "naive attention MACs", "two-stage MACs", "reduction x"], rows,
                       title="Ablation — attention cost of the two-stage patchify (Sec. III-B)"))
    reductions = [row[3] for row in rows]
    assert all(r > 1 for r in reductions)
    # the reduction factor grows with resolution (naive is quadratic in pixels)
    assert reductions == sorted(reductions)
