"""Fig. 1 — motivation: NN codecs are impractical on the edge.

Regenerates the paper's opening measurement: on a Jetson TX2, transmitting a
compressed 512×768 image takes ≈150 ms while *loading* an NN codec takes
0.3–11.6 s and *encoding* takes 0.4–18 s.  The benchmark prints the same
three bars (transmit / load / encode latency) for the Ballé-factorized,
Ballé-hyperprior, MBT (Minnen) and Cheng-anchor cost profiles on the
simulated TX2.
"""

from __future__ import annotations

import pytest

from repro.codecs import ChengCodec, MbtCodec
from repro.experiments import format_table


def _fig1_rows(testbed, balle_profiles, shape):
    codecs = balle_profiles + [MbtCodec(4), ChengCodec(4)]
    payload_bytes = int(0.4 * shape[0] * shape[1] / 8)  # ≈0.4 bpp compressed file
    rows = []
    for codec in codecs:
        report = testbed.run(codec, shape=shape, payload_bytes=payload_bytes, include_load=True)
        rows.append([
            codec.name,
            round(report.timing.transmit_ms, 1),
            round(report.timing.load_ms, 1),
            round(report.timing.encode_ms, 1),
        ])
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_edge_latency_motivation(benchmark, testbed, balle_profiles, paper_image_shape):
    rows = benchmark.pedantic(
        _fig1_rows, args=(testbed, balle_profiles, paper_image_shape), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["codec", "transmit_ms", "load_ms", "edge_encode_ms"], rows,
        title="Fig. 1 — transmission vs load vs edge-encode latency (Jetson TX2, 512x768)",
    ))
    # shape assertions: the gap the paper motivates with
    for _name, transmit, _load, _encode in rows:
        assert 100 <= transmit <= 250, "transmission should sit near the paper's ~150 ms"
    mbt = next(row for row in rows if row[0].startswith("mbt"))
    cheng = next(row for row in rows if row[0].startswith("cheng"))
    assert mbt[3] > 10_000 and cheng[3] > 10_000, "NN encode latency must dwarf transmission"
    assert cheng[2] > mbt[2] > rows[0][2], "load latency ordering Balle < MBT < Cheng"
