"""Frozen seed-generation implementations of the codec hot paths.

The production code in ``src/repro`` replaced these symbol-at-a-time /
per-patch loops with plan-cached vectorized fast paths (see
``repro.core.erase_squeeze.SqueezePlan`` and the table-driven JPEG entropy
coder).  This module preserves the *original* seed semantics verbatim so
``bench_throughput.py`` can measure the real speedup against the same
machine and the same model weights — it is a measurement baseline, not a
fallback, and nothing in ``src`` imports it.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.jpeg import (
    JpegCodec,
    _build_code_table,
    _magnitude_bits,
    _magnitude_category,
    _magnitude_from_bits,
)
from repro.codecs.jpeg_tables import (
    STANDARD_AC_CHROMINANCE,
    STANDARD_AC_LUMINANCE,
    STANDARD_DC_CHROMINANCE,
    STANDARD_DC_LUMINANCE,
    ZIGZAG_ORDER,
)
from repro.core.patchify import (
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    subpatches_to_patch,
    subpatches_to_tokens,
    tokens_to_subpatches,
)
from repro.image import is_color, to_float

__all__ = [
    "SeedBitWriter",
    "SeedBitReader",
    "SeedJpegCodec",
    "seed_erase_and_squeeze_image",
    "seed_unsqueeze_image",
    "seed_reconstruct_image",
    "seed_two_stage_patchify",
]


# --------------------------------------------------------------------- #
# seed bit I/O: one Python call per bit
# --------------------------------------------------------------------- #
class SeedBitWriter:
    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._count = 0

    def write_bit(self, bit):
        self._current = (self._current << 1) | (1 if bit else 0)
        self._count += 1
        if self._count == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._count = 0

    def write_bits(self, value, num_bits):
        for shift in range(num_bits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    @property
    def bit_length(self):
        return len(self._bytes) * 8 + self._count

    def getvalue(self):
        data = bytearray(self._bytes)
        if self._count:
            data.append(self._current << (8 - self._count))
        return bytes(data)


class SeedBitReader:
    def __init__(self, data):
        self._data = bytes(data)
        self._pos = 0

    def read_bit(self):
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            return 0
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, num_bits):
        value = 0
        for _ in range(num_bits):
            value = (value << 1) | self.read_bit()
        return value


# --------------------------------------------------------------------- #
# seed JPEG entropy coding: dict probes per symbol, bit loops per field
# --------------------------------------------------------------------- #
_DC_LUMA_CODES = _build_code_table(STANDARD_DC_LUMINANCE)
_DC_CHROMA_CODES = _build_code_table(STANDARD_DC_CHROMINANCE)
_AC_LUMA_CODES = _build_code_table(STANDARD_AC_LUMINANCE)
_AC_CHROMA_CODES = _build_code_table(STANDARD_AC_CHROMINANCE)


def _invert(codes):
    return {(length, code): symbol for symbol, (code, length) in codes.items()}


_DC_LUMA_DECODE = _invert(_DC_LUMA_CODES)
_DC_CHROMA_DECODE = _invert(_DC_CHROMA_CODES)
_AC_LUMA_DECODE = _invert(_AC_LUMA_CODES)
_AC_CHROMA_DECODE = _invert(_AC_CHROMA_CODES)

_EOB = 0x00
_ZRL = 0xF0


def _seed_write_bits(writer, value, num_bits):
    """Seed-era ``write_bits``: one Python-level ``write_bit`` call per bit."""
    for shift in range(num_bits - 1, -1, -1):
        writer.write_bit((value >> shift) & 1)


def _write_code(writer, codes, symbol):
    code, length = codes[symbol]
    _seed_write_bits(writer, code, length)


def _read_code(reader, decode_table):
    code = 0
    length = 0
    while True:
        code = (code << 1) | reader.read_bit()
        length += 1
        if (length, code) in decode_table:
            return decode_table[(length, code)]
        if length > 16:
            raise ValueError("corrupt JPEG stream: Huffman code longer than 16 bits")


class SeedJpegCodec(JpegCodec):
    """Seed JPEG codec: identical DCT/quantisation, seed entropy loops.

    Overrides only the writer construction and the two channel coders, so
    the produced bitstream and the decoded image are bit-identical to the
    fast implementation — the difference is purely wall-clock.
    """

    def _encode_channel(self, writer, quantised, dc_encode, ac_encode):
        # the fast codec passes its array tables; map them back to the seed
        # dict tables by identity
        from repro.codecs import jpeg as _fast

        is_luma = dc_encode is _fast._DC_LUMA_ENCODE
        dc_codes = _DC_LUMA_CODES if is_luma else _DC_CHROMA_CODES
        ac_codes = _AC_LUMA_CODES if is_luma else _AC_CHROMA_CODES
        zigzagged = quantised.reshape(-1, 64)[:, ZIGZAG_ORDER]
        previous_dc = 0
        for block in zigzagged:
            dc = int(block[0])
            diff = dc - previous_dc
            previous_dc = dc
            size = _magnitude_category(diff)
            _write_code(writer, dc_codes, size)
            if size:
                _seed_write_bits(writer, _magnitude_bits(diff, size), size)
            run = 0
            last_nonzero = np.nonzero(block[1:])[0]
            last_index = last_nonzero[-1] + 1 if last_nonzero.size else 0
            for index in range(1, last_index + 1):
                value = int(block[index])
                if value == 0:
                    run += 1
                    continue
                while run > 15:
                    _write_code(writer, ac_codes, _ZRL)
                    run -= 16
                size = _magnitude_category(value)
                _write_code(writer, ac_codes, (run << 4) | size)
                _seed_write_bits(writer, _magnitude_bits(value, size), size)
                run = 0
            if last_index < 63:
                _write_code(writer, ac_codes, _EOB)

    def _decode_channel(self, reader, num_blocks, dc_decode, ac_decode):
        from repro.codecs import jpeg as _fast

        is_luma = dc_decode is _fast._DC_LUMA_DECODE
        dc_table = _DC_LUMA_DECODE if is_luma else _DC_CHROMA_DECODE
        ac_table = _AC_LUMA_DECODE if is_luma else _AC_CHROMA_DECODE
        seed_reader = SeedBitReader(reader._data)
        seed_reader._pos = reader.position
        blocks = np.zeros((num_blocks, 64), dtype=np.int32)
        previous_dc = 0
        for block_index in range(num_blocks):
            size = _read_code(seed_reader, dc_table)
            diff = _magnitude_from_bits(seed_reader.read_bits(size), size) if size else 0
            previous_dc += diff
            blocks[block_index, 0] = previous_dc
            index = 1
            while index < 64:
                symbol = _read_code(seed_reader, ac_table)
                if symbol == _EOB:
                    break
                if symbol == _ZRL:
                    index += 16
                    continue
                run = symbol >> 4
                size = symbol & 0x0F
                index += run
                if index >= 64:
                    raise ValueError("corrupt JPEG stream: AC index out of range")
                blocks[block_index, index] = _magnitude_from_bits(
                    seed_reader.read_bits(size), size)
                index += 1
        reader.skip_bits(seed_reader._pos - reader.position)
        out = np.zeros((num_blocks, 64), dtype=np.int32)
        out[:, ZIGZAG_ORDER] = blocks
        return out.reshape(num_blocks, 8, 8)


# --------------------------------------------------------------------- #
# seed erase-and-squeeze: per-patch / per-row loops
# --------------------------------------------------------------------- #
def _seed_validate(mask):
    mask = np.asarray(mask)
    kept_per_row = mask.sum(axis=1)
    if not np.all(kept_per_row == kept_per_row[0]):
        raise ValueError("unbalanced mask")
    return int(kept_per_row[0])


def _seed_squeeze_patch(patch, mask, subpatch_size, direction="horizontal"):
    mask = np.asarray(mask, dtype=bool)
    if direction == "vertical":
        transposed = patch.swapaxes(0, 1) if patch.ndim == 2 else patch.transpose(1, 0, 2)
        squeezed = _seed_squeeze_patch(transposed, mask.T, subpatch_size, "horizontal")
        return squeezed.swapaxes(0, 1) if squeezed.ndim == 2 else squeezed.transpose(1, 0, 2)
    kept_per_row = _seed_validate(mask)
    subpatches = patch_to_subpatches(patch, subpatch_size)
    grid = mask.shape[0]
    rows = []
    for row in range(grid):
        rows.append(subpatches[row][mask[row]])
    packed = np.stack(rows)
    grid_rows = packed.shape[0]
    b = packed.shape[2]
    if packed.ndim == 5:
        channels = packed.shape[4]
        return packed.transpose(0, 2, 1, 3, 4).reshape(grid_rows * b, kept_per_row * b, channels)
    return packed.transpose(0, 2, 1, 3).reshape(grid_rows * b, kept_per_row * b)


def _seed_unsqueeze_patch(squeezed, mask, subpatch_size, fill="zero"):
    mask = np.asarray(mask, dtype=bool)
    kept_per_row = _seed_validate(mask)
    grid = mask.shape[0]
    block = np.asarray(squeezed)
    grid_rows = block.shape[0] // subpatch_size
    if block.ndim == 3:
        channels = block.shape[2]
        rows = block.reshape(grid_rows, subpatch_size, kept_per_row, subpatch_size, channels)
        packed = rows.transpose(0, 2, 1, 3, 4)
    else:
        rows = block.reshape(grid_rows, subpatch_size, kept_per_row, subpatch_size)
        packed = rows.transpose(0, 2, 1, 3)
    sample = packed[0, 0]
    subpatches = np.zeros((grid, grid) + sample.shape, dtype=np.float64)
    for row in range(grid):
        kept_columns = np.flatnonzero(mask[row])
        subpatches[row, kept_columns] = packed[row]
        if fill == "zero":
            continue
        erased_columns = np.flatnonzero(~mask[row])
        if kept_columns.size == 0:
            continue
        for column in erased_columns:
            if fill == "neighbor":
                nearest = kept_columns[np.argmin(np.abs(kept_columns - column))]
                subpatches[row, column] = subpatches[row, nearest]
            else:
                subpatches[row, column] = packed[row].mean(axis=0)
    return subpatches_to_patch(subpatches)


def seed_erase_and_squeeze_image(image, mask, patch_size, subpatch_size,
                                 direction="horizontal"):
    patches, grid_shape, original_shape = image_to_patches(image, patch_size)
    squeezed_patches = np.stack([
        _seed_squeeze_patch(patch, mask, subpatch_size, direction) for patch in patches
    ])
    rows, cols = grid_shape
    ph, pw = squeezed_patches.shape[1], squeezed_patches.shape[2]
    if squeezed_patches.ndim == 4:
        channels = squeezed_patches.shape[3]
        grid = squeezed_patches.reshape(rows, cols, ph, pw, channels)
        squeezed = grid.transpose(0, 2, 1, 3, 4).reshape(rows * ph, cols * pw, channels)
    else:
        grid = squeezed_patches.reshape(rows, cols, ph, pw)
        squeezed = grid.transpose(0, 2, 1, 3).reshape(rows * ph, cols * pw)
    return squeezed, grid_shape, original_shape


def seed_unsqueeze_image(squeezed, mask, patch_size, subpatch_size, grid_shape,
                         original_shape, fill="zero", direction="horizontal"):
    mask = np.asarray(mask, dtype=bool)
    rows, cols = grid_shape
    kept = int(mask.sum(axis=1)[0])
    if direction == "horizontal":
        ph, pw = patch_size, kept * subpatch_size
    else:
        ph, pw = kept * subpatch_size, patch_size
    if squeezed.ndim == 3:
        channels = squeezed.shape[2]
        patches = squeezed.reshape(rows, ph, cols, pw, channels).transpose(0, 2, 1, 3, 4)
        patches = patches.reshape(rows * cols, ph, pw, channels)
    else:
        patches = squeezed.reshape(rows, ph, cols, pw).transpose(0, 2, 1, 3)
        patches = patches.reshape(rows * cols, ph, pw)
    if direction == "vertical":
        restored = [
            _seed_unsqueeze_patch(
                patch.swapaxes(0, 1) if patch.ndim == 2 else patch.transpose(1, 0, 2),
                mask.T, subpatch_size, fill,
            )
            for patch in patches
        ]
        restored = [p.swapaxes(0, 1) if p.ndim == 2 else p.transpose(1, 0, 2) for p in restored]
    else:
        restored = [_seed_unsqueeze_patch(patch, mask, subpatch_size, fill) for patch in patches]
    return patches_to_image(np.stack(restored), grid_shape, original_shape)


# --------------------------------------------------------------------- #
# seed tokenization + reconstruction: per-patch loops, 3x per-channel model calls
# --------------------------------------------------------------------- #
import contextlib

from repro import nn as _nn
from repro.nn import functional as _F
from repro.nn.tensor import as_tensor as _as_tensor


def _seed_linear(x, weight, bias=None):
    """Seed-era ``F.linear``: a stack of per-batch-element GEMMs."""
    out = _as_tensor(x) @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def _seed_gelu(self):
    """Seed-era ``Tensor.gelu`` with the ``x ** 3`` power call (which numpy
    evaluates on a slow scalar path for arrays containing negatives)."""
    c = np.sqrt(2.0 / np.pi)
    x = self.data
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    out_data = 0.5 * x * (1.0 + t)

    def backward(grad):
        if self.requires_grad:
            dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
            dt = (1.0 - t ** 2) * dinner
            local = 0.5 * (1.0 + t) + 0.5 * x * dt
            self._accumulate(grad * local)

    return self._make_child(out_data, (self,), backward, "gelu")


@contextlib.contextmanager
def seed_nn_ops():
    """Temporarily restore the seed-generation nn ops: the batched-GEMM
    ``F.linear`` and the ``x ** 3`` GELU."""
    from repro.nn.tensor import Tensor as _Tensor

    fast_linear = _F.linear
    fast_gelu = _Tensor.gelu
    _F.linear = _seed_linear
    _Tensor.gelu = _seed_gelu
    try:
        yield
    finally:
        _F.linear = fast_linear
        _Tensor.gelu = fast_gelu


def _seed_reconstruct_tokens(model, tokens, mask, keep_original=True):
    """Seed ``reconstruct_tokens``: the float64 autograd forward under
    ``no_grad`` (the float32 fused inference path did not exist), with the
    per-call scatter-matrix rebuild restored."""
    flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
    kept_indices = np.flatnonzero(flat_mask)
    cfg = model.config
    with _nn.no_grad(), seed_nn_ops():
        tokens_t = _nn.as_tensor(tokens)
        kept_tokens = tokens_t[:, kept_indices, :]
        embedded = model.input_projection(kept_tokens) + model.positional_embedding[kept_indices]
        encoded = model.encoder(embedded)
        scatter = np.zeros((cfg.tokens_per_patch, kept_indices.size))
        scatter[kept_indices, np.arange(kept_indices.size)] = 1.0
        full_features = _nn.Tensor(scatter) @ encoded
        full_features = full_features + model.positional_embedding
        decoded = model.decoder(full_features)
        predicted = model.output_projection(decoded).sigmoid().data
    if keep_original:
        output = np.array(predicted)
        output[:, flat_mask, :] = np.asarray(tokens)[:, flat_mask, :]
        return output
    return predicted


def seed_two_stage_patchify(image, patch_size, subpatch_size):
    patches, grid_shape, original_shape = image_to_patches(image, patch_size)
    token_batches = [subpatches_to_tokens(patch_to_subpatches(patch, subpatch_size))
                     for patch in patches]
    return np.stack(token_batches), grid_shape, original_shape


def seed_reconstruct_image(model, filled_image, mask, keep_original=True):
    cfg = model.config
    filled_image = to_float(filled_image)
    if is_color(filled_image) and cfg.channels == 1:
        channels = [seed_reconstruct_image(model, filled_image[..., c], mask, keep_original)
                    for c in range(3)]
        return np.stack(channels, axis=-1)

    patches, grid_shape, original_shape = image_to_patches(filled_image, cfg.patch_size)
    token_batches = np.stack([
        subpatches_to_tokens(patch_to_subpatches(patch, cfg.subpatch_size))
        for patch in patches
    ])
    reconstructed_tokens = _seed_reconstruct_tokens(model, token_batches, mask, keep_original)
    rebuilt_patches = []
    for tokens in reconstructed_tokens:
        subpatches = tokens_to_subpatches(tokens, cfg.grid_size, cfg.subpatch_size,
                                          cfg.channels)
        rebuilt_patches.append(subpatches_to_patch(subpatches))
    image = patches_to_image(np.stack(rebuilt_patches), grid_shape, original_shape)
    return np.clip(image, 0.0, 1.0)
